"""Model-based KVStore test: behaves exactly like a dict + invariants."""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.imdb import KVStore

keys = st.binary(min_size=1, max_size=16)
values = st.binary(min_size=0, max_size=6000)


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = KVStore(page_size=4096, entry_overhead=64)
        self.model: dict[bytes, bytes] = {}

    @rule(key=keys, value=values)
    def set_(self, key, value):
        first, n = self.store.set(key, value)
        self.model[key] = value
        assert n >= 1
        assert first + n <= self.store.heap_pages

    @rule(key=keys)
    def get_(self, key):
        assert self.store.get(key) == self.model.get(key)

    @rule(key=keys)
    def delete_(self, key):
        assert self.store.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @invariant()
    def same_contents(self):
        assert self.store.as_dict() == self.model
        assert len(self.store) == len(self.model)

    @invariant()
    def memory_accounting_exact(self):
        expected = sum(len(k) + len(v) + 64 for k, v in self.model.items())
        assert self.store.used_bytes == expected

    @invariant()
    def page_ranges_disjoint(self):
        spans = sorted(
            self.store.pages_of(k) for k in self.model
        )
        for (a_first, a_n), (b_first, _) in zip(spans, spans[1:]):
            assert a_first + a_n <= b_first


TestStoreMachine = StoreMachine.TestCase
TestStoreMachine.settings = settings(max_examples=40, deadline=None,
                                     stateful_step_count=40)


@given(st.lists(st.tuples(keys, values), max_size=60))
@settings(max_examples=40, deadline=None)
def test_load_equals_incremental_set(pairs):
    """Bulk load and incremental construction agree."""
    inc = KVStore()
    final = {}
    for k, v in pairs:
        inc.set(k, v)
        final[k] = v
    bulk = KVStore()
    bulk.load(final)
    assert bulk.as_dict() == inc.as_dict()
    assert bulk.used_bytes == inc.used_bytes
