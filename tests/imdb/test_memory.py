"""fork/CoW model tests."""

import pytest

from repro.imdb import CowMemory, ForkModel
from repro.kernel import CpuAccount
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def acct(env):
    return CpuAccount(env, "parent")


def drive(env, gen):
    p = env.process(gen)
    return env.run(until=p)


def test_fork_charges_pt_copy(env, acct):
    cow = CowMemory(env, ForkModel(pt_copy_per_page=1e-6))

    def proc():
        yield from cow.fork(1000, acct)

    drive(env, proc())
    assert env.now == pytest.approx(1e-3)
    assert acct.time_in("fork") == pytest.approx(1e-3)
    assert cow.snapshot_active


def test_touch_copies_shared_pages_once(env, acct):
    cow = CowMemory(env, page_size=4096)

    def proc():
        yield from cow.fork(10, acct)
        n1 = yield from cow.touch(2, 3, acct)
        n2 = yield from cow.touch(2, 3, acct)  # already copied
        return n1, n2

    n1, n2 = drive(env, proc())
    assert n1 == 3
    assert n2 == 0
    assert cow.copied_pages == 3
    assert cow.cow_faults == 1
    assert cow.extra_bytes == 3 * 4096


def test_touch_outside_fork_is_free(env, acct):
    cow = CowMemory(env)

    def proc():
        n = yield from cow.touch(0, 5, acct)
        return n

    assert drive(env, proc()) == 0
    assert env.now == 0


def test_pages_allocated_after_fork_not_shared(env, acct):
    cow = CowMemory(env)

    def proc():
        yield from cow.fork(10, acct)
        n = yield from cow.touch(50, 2, acct)  # beyond fork-point heap
        return n

    assert drive(env, proc()) == 0


def test_reap_frees_extra_memory(env, acct):
    cow = CowMemory(env, page_size=4096)

    def proc():
        yield from cow.fork(10, acct)
        yield from cow.touch(0, 10, acct)
        assert cow.extra_bytes == 10 * 4096
        cow.reap()

    drive(env, proc())
    assert cow.extra_bytes == 0
    assert not cow.snapshot_active
    assert cow.extra.peak == 10 * 4096


def test_double_fork_rejected(env, acct):
    cow = CowMemory(env)

    def proc():
        yield from cow.fork(5, acct)
        yield from cow.fork(5, acct)

    env.process(proc())
    with pytest.raises(RuntimeError):
        env.run()


def test_reap_without_fork_rejected(env):
    cow = CowMemory(env)
    with pytest.raises(RuntimeError):
        cow.reap()


def test_second_fork_generation_after_reap(env, acct):
    cow = CowMemory(env)

    def proc():
        yield from cow.fork(5, acct)
        yield from cow.touch(0, 5, acct)
        cow.reap()
        yield from cow.fork(8, acct)
        n = yield from cow.touch(0, 5, acct)  # shared again
        return n

    assert drive(env, proc()) == 5
    assert cow.copied_pages == 10


def test_cow_cost_scales_with_pages(env, acct):
    model = ForkModel(fault_overhead=1e-6, page_copy_time=2e-6,
                      pt_copy_per_page=0.0)
    cow = CowMemory(env, model)

    def proc():
        yield from cow.fork(100, acct)
        t0 = env.now
        yield from cow.touch(0, 10, acct)
        return env.now - t0

    assert drive(env, proc()) == pytest.approx(1e-6 + 10 * 2e-6)


def test_fork_model_validation():
    with pytest.raises(ValueError):
        ForkModel(page_copy_time=-1)
