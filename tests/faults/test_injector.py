"""FaultyDevice unit tests: torn writes, dead-device semantics, seeded
transient errors, and the targeted ``force_errors`` hook."""

import random

import pytest

from repro.faults import ErrorSpec, FaultyDevice, PowerCutSpec
from repro.nvme import NvmeError, NvmeTimeout, ReadCmd, WriteCmd
from repro.obs import MetricsRegistry
from repro.sim import Environment

from tests.faults.conftest import drive, make_device


def test_power_cut_spec_validation():
    with pytest.raises(ValueError):
        PowerCutSpec()  # neither trigger set
    with pytest.raises(ValueError):
        PowerCutSpec(at_page_write=1, at_time=1.0)  # both set
    with pytest.raises(ValueError):
        PowerCutSpec(at_page_write=-1)
    with pytest.raises(ValueError):
        PowerCutSpec(at_page_write=0, torn="bogus")


def test_error_spec_validation():
    with pytest.raises(ValueError):
        ErrorSpec(write_error_rate=1.5)
    with pytest.raises(ValueError):
        ErrorSpec(max_failures_per_cmd=-1)
    with pytest.raises(ValueError):
        ErrorSpec(timeout_fraction=-0.1)


def test_torn_prefix_keeps_first_pages(env, device):
    page = device.lba_size
    faulty = FaultyDevice(device, power=PowerCutSpec(at_page_write=2))
    payload = b"".join(bytes([i + 1]) * page for i in range(4))

    proc = env.process(faulty.submit(WriteCmd(lba=8, nlb=4, data=payload)))
    env.run(until=faulty.cut_event)

    assert faulty.power_lost
    assert proc.is_alive  # the host never sees a completion
    stored = device.peek(8, 4)
    assert stored[: 2 * page] == payload[: 2 * page]
    assert not any(stored[2 * page:])  # torn pages keep their old content
    assert faulty.counters["power_cuts"] == 1
    assert faulty.counters["torn_write_cmds"] == 1
    assert faulty.counters["torn_pages"] == 2


def test_torn_shuffle_is_a_seeded_subset():
    def run(seed):
        env = Environment()
        device = make_device(env)
        page = device.lba_size
        faulty = FaultyDevice(device, power=PowerCutSpec(
            at_page_write=3, torn="shuffle", seed=seed))
        payload = b"".join(bytes([i + 1]) * page for i in range(8))
        env.process(faulty.submit(WriteCmd(lba=0, nlb=8, data=payload)))
        env.run(until=faulty.cut_event)
        stored = device.peek(0, 8)
        return {
            i for i in range(8)
            if stored[i * page:(i + 1) * page]
            == payload[i * page:(i + 1) * page]
        }

    a = run(7)
    assert a == run(7)  # same seed, same surviving subset
    assert len(a) == 3  # exactly at_page_write pages survive


def test_at_time_cut_tears_the_inflight_command(env, device):
    page = device.lba_size
    faulty = FaultyDevice(device, power=PowerCutSpec(at_time=2e-6, seed=11))
    payload = b"".join(bytes([i + 1]) * page for i in range(8))

    proc = env.process(faulty.submit(WriteCmd(lba=0, nlb=8, data=payload)))
    env.run(until=faulty.cut_event)
    assert env.now == pytest.approx(2e-6)
    env.run(until=1e-3)
    assert proc.is_alive  # completion never reaches the dead host

    # prefix mode: the seeded keep-count pages survive in order
    keep = random.Random(11).randint(0, 8)
    stored = device.peek(0, 8)
    assert stored[: keep * page] == payload[: keep * page]
    assert not any(stored[keep * page:])


def test_commands_after_cut_hang_forever(env, device):
    page = device.lba_size
    faulty = FaultyDevice(device, power=PowerCutSpec(at_page_write=0))
    p1 = env.process(faulty.submit(WriteCmd(lba=0, nlb=1, data=bytes(page))))
    env.run(until=faulty.cut_event)
    assert not any(device.peek(0))  # at_page_write=0: nothing persisted

    p2 = env.process(faulty.submit(ReadCmd(lba=0, nlb=1)))
    env.run(until=env.now + 1.0)
    assert p1.is_alive and p2.is_alive
    assert faulty.counters["commands_after_cut"] == 1


def test_cut_now_after_quiesce_keeps_completed_writes(env, device):
    page = device.lba_size
    faulty = FaultyDevice(device)
    drive(env, faulty.submit(WriteCmd(lba=0, nlb=1, data=b"x" * page)))
    faulty.cut_now()
    assert faulty.power_lost
    assert faulty.cut_event.triggered
    assert device.peek(0) == b"x" * page  # completed writes persist
    p = env.process(faulty.submit(ReadCmd(lba=0, nlb=1)))
    env.run(until=env.now + 1e-3)
    assert p.is_alive


def test_image_survives_reboot(env, device):
    page = device.lba_size
    faulty = FaultyDevice(device, power=PowerCutSpec(at_page_write=5))

    def writer():
        for i in range(3):
            data = bytes([i + 1]) * (2 * page)
            yield from faulty.submit(WriteCmd(lba=i * 2, nlb=2, data=data))

    env.process(writer())
    env.run(until=faulty.cut_event)
    image = faulty.inner.image()

    env2 = Environment()
    device2 = make_device(env2)
    device2.load_image(image)
    assert device2.peek(0, 6) == device.peek(0, 6)
    assert device2.peek(4, 2)[:page] == bytes([3]) * page  # survivor
    assert not any(device2.peek(4, 2)[page:])  # torn page


def test_force_errors_targets_lba_ranges(env, device):
    page = device.lba_size
    faulty = FaultyDevice(device)
    faulty.force_errors(10, 12, count=1, kind="error", opcode="write")
    faulty.force_errors(20, 21, count=1, kind="timeout")
    with pytest.raises(ValueError):
        faulty.force_errors(0, 1, kind="explode")

    def proc():
        outcomes = []
        try:
            yield from faulty.submit(WriteCmd(lba=10, nlb=1,
                                              data=bytes(page)))
        except NvmeTimeout:
            outcomes.append("timeout")
        except NvmeError as exc:
            outcomes.append(("error", exc.opcode, exc.lba))
        # the budget is exhausted: the same write now succeeds
        yield from faulty.submit(WriteCmd(lba=10, nlb=1, data=bytes(page)))
        outcomes.append("ok")
        try:
            yield from faulty.submit(ReadCmd(lba=20, nlb=1))
        except NvmeTimeout:
            outcomes.append("read-timeout")
        return outcomes

    assert drive(env, proc()) == [("error", "write", 10), "ok",
                                  "read-timeout"]
    assert faulty.counters["errors_injected"] == 1
    assert faulty.counters["timeouts_injected"] == 1


def test_seeded_errors_are_reproducible():
    def run(seed):
        env = Environment()
        device = make_device(env)
        page = device.lba_size
        spec = ErrorSpec(seed=seed, write_error_rate=0.3,
                         timeout_fraction=0.0)
        faulty = FaultyDevice(device, errors=spec)
        failed = []
        cmds = []  # hold refs so id() never collides across iterations

        def proc():
            for i in range(40):
                cmd = WriteCmd(lba=i % 8, nlb=1, data=bytes(page))
                cmds.append(cmd)
                try:
                    yield from faulty.submit(cmd)
                except NvmeError:
                    failed.append(i)

        drive(env, proc())
        return failed

    assert run(5) == run(5)
    assert run(5)  # the rate is high enough that some commands fail


def test_attach_obs_mirrors_counters(env, device):
    page = device.lba_size
    faulty = FaultyDevice(device)
    registry = MetricsRegistry(env, name="faults-test")
    faulty.attach_obs(registry)
    faulty.force_errors(0, 1, count=1, opcode="write")

    def proc():
        try:
            yield from faulty.submit(WriteCmd(lba=0, nlb=1,
                                              data=bytes(page)))
        except NvmeError:
            pass

    drive(env, proc())
    assert registry.counter("faults_errors_injected_total").value == 1
