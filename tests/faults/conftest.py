"""Shared fixtures for the fault-injection test suite."""

import pytest

from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.kernel import CpuAccount
from repro.nvme import NvmeDevice
from repro.sim import Environment

FAST_NAND = NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                       channel_transfer=0.5e-6)
SMALL_FTL = FtlConfig(op_ratio=0.2, gc_trigger_segments=3,
                      gc_stop_segments=4, gc_reserve_segments=2)


def make_device(env):
    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=24,
                      pages_per_block=16)
    return NvmeDevice(env, g, FAST_NAND, SMALL_FTL)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def device(env):
    return make_device(env)


@pytest.fixture
def account(env):
    return CpuAccount(env, "faults-test")


def drive(env, gen, name="driver"):
    """Run a generator as a process to completion; return its value."""
    p = env.process(gen, name=name)
    return env.run(until=p)
