"""Pinned regressions: one test per crash-window bug the fault
campaigns flushed out. Each test reproduces the exact window the bug
lived in, so a reintroduction fails here before it reaches the matrix.
"""

import pytest

from repro import LoggingPolicy, SnapshotKind, SystemConfig, build_slimio
from repro.core.engine import SlimIOSystem
from repro.core.lba import SlotRole
from repro.core.paths import current_metadata
from repro.core.verify import verify_lba_space
from repro.faults import FaultyDevice
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ClientOp, ServerConfig
from repro.nvme import NvmeDevice, NvmeError
from repro.persist.encoding import AofCodec, AofRecord, OP_SET
from repro.sim import Environment

from tests.faults.conftest import drive

FAST = NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                  channel_transfer=0.5e-6)
SMALL = SystemConfig(
    geometry=FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=64,
                           pages_per_block=16),
    nand=FAST,
    ftl=FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                  gc_reserve_segments=2),
    policy=LoggingPolicy.ALWAYS,
    # no auto-rotation: each test stages its own generation handoffs
    server=ServerConfig(wal_snapshot_trigger_bytes=None,
                        snapshot_chunk_entries=8),
)


def _build_on_faulty(cfg):
    """A system over an explicit FaultyDevice (for force_errors)."""
    env = Environment()
    num_pids = cfg.num_pids or max(8, cfg.placement.max_pid + 1)
    inner = NvmeDevice(env, cfg.geometry, cfg.nand, cfg.ftl, fdp=cfg.fdp,
                       num_pids=num_pids, batched=cfg.batched)
    faulty = FaultyDevice(inner)
    return SlimIOSystem(env, cfg, device=faulty), faulty


def _reboot(system, cfg):
    """Fresh system on the surviving image (a true power-cycle)."""
    image = system.device.image()
    env = Environment()
    num_pids = cfg.num_pids or max(8, cfg.placement.max_pid + 1)
    device = NvmeDevice(env, cfg.geometry, cfg.nand, cfg.ftl, fdp=cfg.fdp,
                        num_pids=num_pids, batched=cfg.batched)
    device.load_image(image)
    return SlimIOSystem(env, cfg, device=device)


# --------------------------------------------------------------- bug 1
def test_async_head_hint_builds_metadata_at_write_time():
    """Bug 1: the async WAL head-hint captured the Metadata when it was
    *scheduled*; a generation rotation landing before the write ran was
    durably reverted by the stale hint's higher seqno."""
    system = build_slimio(config=SMALL)
    env = system.env
    wp = system.wal_path
    acct = wp.account

    def setup():
        yield from wp.append(AofCodec.encode(
            AofRecord(OP_SET, b"a", b"x" * 64)), acct)
        yield from wp.flush(acct)  # schedules the async head-hint write
        # rotate before the async writer has had a chance to run (no
        # yield between the flush return and this call)
        yield from wp.begin_generation(acct)
        yield env.timeout(2e-3)  # now let every metadata write land
        meta = yield from system.meta_store.read(acct)
        return meta

    meta = drive(env, setup())
    assert meta.wal_gen_start == system.space.wal.gen_start
    assert meta.wal_prev_start == system.space.wal.prev_start
    assert meta.wal_prev_bytes == system.space.wal.prev_bytes
    system.stop()


# --------------------------------------------------------------- bug 2
def test_current_metadata_carries_every_field():
    """Bug 2 (unit): every durable metadata write goes through one
    builder that includes the wal_prev_* handoff and the slot table."""
    system = build_slimio(config=SMALL)
    space = system.space
    # raw cursor pokes: this test checks the *builder* carries every
    # field, not the protocol that normally moves them
    space.wal.gen_start = 7  # slimlint: ignore[SLIM008]
    space.wal.head = 9  # slimlint: ignore[SLIM008]
    space.wal.prev_start = 3  # slimlint: ignore[SLIM008]
    space.wal.prev_bytes = 777  # slimlint: ignore[SLIM008]
    meta = current_metadata(space)
    assert (meta.wal_gen_start, meta.wal_head) == (7, 9)
    assert (meta.wal_prev_start, meta.wal_prev_bytes) == (3, 777)
    assert meta.slot_roles == [int(r) for r in space.slots.roles]
    assert meta.slot_lengths == list(space.slots.lengths)
    system.stop()


def test_promotion_keeps_pending_prev_generation_durable():
    """Bug 2 (integration): promoting a snapshot while a previous WAL
    generation is still pending retirement must not durably drop the
    wal_prev_* handoff — a crash right after would lose acked records."""
    system = build_slimio(config=SMALL)
    env = system.env
    acct = system.wal_path.account

    def driver():
        for i in range(6):
            yield from system.server.execute(
                ClientOp("SET", b"k%d" % i, bytes([i + 1]) * 200))
        yield from system.wal_path.begin_generation(acct)
        for i in range(3):
            yield from system.server.execute(
                ClientOp("SET", b"n%d" % i, bytes([i + 9]) * 200))

    drive(env, driver())
    env.run(until=system.server.start_snapshot(SnapshotKind.ON_DEMAND))
    env.run(until=env.now + 5e-3)  # drain trailing async metadata writes
    meta = drive(env, system.meta_store.read(acct))
    assert system.space.wal.prev_start is not None
    assert meta.wal_prev_start == system.space.wal.prev_start
    assert meta.wal_prev_bytes > 0
    # a crash right now still recovers every acked record
    system.crash()
    result = drive(env, system.recover(SnapshotKind.ON_DEMAND))
    assert result.data[b"k5"] == bytes([6]) * 200
    assert result.data[b"n2"] == bytes([11]) * 200
    system.stop()


# --------------------------------------------------------------- bug 3
def test_failed_promotion_rolls_back_and_retries_cleanly():
    """Bug 3: when the promotion's metadata write fails, the in-memory
    slot promotion must roll back (memory matches flash), the old
    snapshot stays authoritative, and a later attempt succeeds."""
    system, faulty = _build_on_faulty(SMALL)
    env = system.env

    def driver():
        for i in range(8):
            yield from system.server.execute(
                ClientOp("SET", b"k%d" % i, bytes([i + 1]) * 300))
        yield env.timeout(5e-3)  # drain async metadata writes

    drive(env, driver())
    roles_before = list(system.space.slots.roles)
    # fail the metadata A/B pages exactly max_attempts times: the ring
    # retries three times, then gives up and fails the snapshot child
    faulty.force_errors(0, 2, count=4, opcode="write")
    proc = system.server.start_snapshot(SnapshotKind.ON_DEMAND)
    with pytest.raises(NvmeError):
        env.run(until=proc)
    assert system.space.slots.roles == roles_before
    assert system.space.slots.slot_of(SlotRole.ONDEMAND_SNAPSHOT) is None
    assert system.wal_ring.counters["retry_giveups"] == 1

    # the fault budget is exhausted: the next attempt publishes cleanly
    env.run(until=system.server.start_snapshot(SnapshotKind.ON_DEMAND))
    assert system.space.slots.slot_of(SlotRole.ONDEMAND_SNAPSHOT) is not None
    system.crash()
    result = drive(env, system.recover(SnapshotKind.ON_DEMAND))
    assert len(result.data) == 8
    system.stop()


# --------------------------------------------------------------- bug 4
def test_post_recovery_appends_survive_a_second_crash():
    """Bug 4: recovery left the partial tail page un-staged, so the next
    flush started a fresh page behind a zero gap — every post-recovery
    record was then invisible to the following recovery."""
    system = build_slimio(config=SMALL)
    env = system.env

    def phase(tag, n):
        for i in range(n):
            yield from system.server.execute(
                ClientOp("SET", b"%c%d" % (tag, i), bytes([i + 1]) * 120))

    drive(env, phase(ord("a"), 5))
    system.crash()
    r1 = drive(env, system.recover())
    assert len(r1.data) == 5
    assert r1.wal_tail == "clean"

    system.server.store.load(dict(r1.data))
    drive(env, phase(ord("b"), 4))
    system.crash()
    r2 = drive(env, system.recover())
    expected = dict(r1.data)
    for i in range(4):
        expected[b"b%d" % i] = bytes([i + 1]) * 120
    assert r2.data == expected
    system.stop()


# --------------------------------------------------------------- bug 5
def test_stale_retired_pages_not_adopted_and_wiped():
    """Bug 5: a crash between retire_previous's metadata write and its
    TRIMs strands retired-generation pages on flash; recovery must not
    re-adopt them past the head and must wipe them before new appends."""
    system = build_slimio(config=SMALL)
    env = system.env
    wp = system.wal_path
    acct = wp.account

    def setup():
        for i in range(3):
            yield from wp.append(AofCodec.encode(
                AofRecord(OP_SET, b"old%d" % i, b"A" * 150)), acct)
        yield from wp.flush(acct)
        yield from wp.begin_generation(acct)
        for i in range(2):
            yield from wp.append(AofCodec.encode(
                AofRecord(OP_SET, b"new%d" % i, b"B" * 150)), acct)
        yield from wp.flush(acct)
        # retire's first half only: metadata stops naming the old
        # generation; the crash lands before any TRIM is issued
        system.space.wal.retire_previous()
        yield from system.meta_store.write(
            current_metadata(system.space), acct)

    drive(env, setup())
    system.crash()
    result = drive(env, system.recover())
    assert result.data == {b"new0": b"B" * 150, b"new1": b"B" * 150}
    # the stale generation's pages were wiped by trim_beyond_head
    assert not any(system.device.peek(system.space.layout.wal_base, 1))
    system.stop()


# --------------------------------------------------------------- bug 6
def test_stale_prev_start_does_not_poison_replay():
    """Bug 6 (found by the error lane): durable metadata can still name
    a previous generation whose pages retire_previous already TRIMmed.
    Replaying the zeroed region at the stream head classified the whole
    WAL as interior-corrupt and discarded every acked record of the
    *current* generation."""
    system = build_slimio(config=SMALL)
    env = system.env
    wp = system.wal_path
    acct = wp.account

    def setup():
        yield from wp.append(AofCodec.encode(
            AofRecord(OP_SET, b"old", b"A" * 200)), acct)
        yield from wp.flush(acct)
        yield from wp.begin_generation(acct)
        for i in range(2):
            yield from wp.append(AofCodec.encode(
                AofRecord(OP_SET, b"new%d" % i, b"B" * 200)), acct)
        yield from wp.flush(acct)
        # the crash window: the TRIM ran, but the durable metadata
        # still names the previous generation
        wal = system.space.wal
        for lba, n in wal.contiguous_run(wal.prev_start,
                                         wal.gen_start - wal.prev_start):
            if n:
                ev = yield from wp.ring.deallocate(lba, n, acct)
                yield from wp.ring.wait(ev, acct)
        yield env.timeout(2e-3)

    drive(env, setup())
    system.crash()
    result = drive(env, system.recover())
    # current-generation records all survive; the TRIMmed previous
    # generation (covered by a durable snapshot in the real sequence)
    # is dropped rather than replayed as garbage
    assert result.data == {b"new0": b"B" * 200, b"new1": b"B" * 200}
    assert result.wal_corrupt_records == 0
    system.stop()


# ------------------------------------------------- first-metadata crash
def test_recover_with_blank_metadata_replays_wal():
    """A cut before (or tearing) the first-ever metadata write leaves
    both A/B copies blank while acked records sit in the WAL region;
    recovery must scan them out rather than report an empty store."""
    system = build_slimio(config=SMALL)
    env = system.env

    def driver():
        for i in range(4):
            yield from system.server.execute(
                ClientOp("SET", b"k%d" % i, bytes([i + 1]) * 100))

    drive(env, driver())
    page = system.device.lba_size
    system.device._data[0] = bytes(page)
    system.device._data[1] = bytes(page)

    rebooted = _reboot(system, SMALL)
    result = drive(rebooted.env,
                   rebooted.recover(SnapshotKind.WAL_TRIGGERED))
    assert result.data == {b"k%d" % i: bytes([i + 1]) * 100
                           for i in range(4)}
    system.stop()
    rebooted.stop()


def test_verify_tolerates_missing_metadata_only_when_asked():
    """The offline checker stays strict by default (zeroed metadata on a
    non-blank device is damage) but the crash harness can opt into the
    pre-first-metadata state and still count the WAL records."""
    system = build_slimio(config=SMALL)
    env = system.env

    def driver():
        for i in range(4):
            yield from system.server.execute(
                ClientOp("SET", b"k%d" % i, bytes([i + 1]) * 100))

    drive(env, driver())
    page = system.device.lba_size
    system.device._data[0] = bytes(page)
    system.device._data[1] = bytes(page)

    lay = system.space.layout
    strict = verify_lba_space(
        system.device, lay, snapshot_fraction=SMALL.snapshot_fraction)
    assert not strict.ok
    tolerant = verify_lba_space(
        system.device, lay, snapshot_fraction=SMALL.snapshot_fraction,
        allow_missing_metadata=True)
    assert tolerant.ok, tolerant.issues
    assert tolerant.wal_records >= 4
    system.stop()
