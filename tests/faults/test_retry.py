"""Ring retry-with-backoff against injected NVMe errors.

The contract the error lane relies on: transient ``NvmeError`` /
``NvmeTimeout`` failures are retried with bounded exponential backoff
while the command slot is held; exhausting the budget fails the
completion event with the last error and counts a giveup.
"""

import pytest

from repro.faults import FaultyDevice
from repro.kernel import KernelCosts, PassthruQueuePair
from repro.kernel.iouring import RetryPolicy
from repro.nvme import NvmeError, WriteCmd
from repro.obs import MetricsRegistry

from tests.faults.conftest import drive


def test_backoff_schedule():
    p = RetryPolicy()  # base 50us, doubling, capped at 2ms
    assert p.backoff(1) == pytest.approx(50e-6)
    assert p.backoff(2) == pytest.approx(100e-6)
    assert p.backoff(3) == pytest.approx(200e-6)
    capped = RetryPolicy(backoff_base=1e-3, backoff_cap=1.5e-3)
    assert capped.backoff(2) == pytest.approx(1.5e-3)


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base=-1.0)


def test_transient_errors_absorbed_by_retries(env, device, account):
    page = device.lba_size
    faulty = FaultyDevice(device)
    ring = PassthruQueuePair(env, faulty, KernelCosts())
    faulty.force_errors(0, 1, count=2, opcode="write")

    def proc():
        yield from ring.submit_and_wait(
            WriteCmd(lba=0, nlb=1, data=b"r" * page), account)

    drive(env, proc())
    assert ring.counters["nvme_errors"] == 2
    assert ring.counters["retries"] == 2
    assert ring.counters["retry_giveups"] == 0
    assert ring.counters["completed"] == 1
    assert device.peek(0) == b"r" * page
    # both backoffs elapsed (50 + 100 us) on top of the error latency
    assert env.now >= 150e-6


def test_bounded_giveup_fails_the_completion(env, device, account):
    page = device.lba_size
    faulty = FaultyDevice(device)
    ring = PassthruQueuePair(env, faulty, KernelCosts())  # max_attempts=4
    faulty.force_errors(0, 1, count=99, opcode="write")

    def proc():
        try:
            yield from ring.submit_and_wait(
                WriteCmd(lba=0, nlb=1, data=bytes(page)), account)
        except NvmeError as exc:
            return exc
        return None

    exc = drive(env, proc())
    assert isinstance(exc, NvmeError)
    assert ring.counters["nvme_errors"] == 4  # all four attempts failed
    assert ring.counters["retries"] == 3
    assert ring.counters["retry_giveups"] == 1
    assert ring.counters.get("completed") == 0
    assert ring.inflight == 0  # the slot was released on giveup


def test_max_attempts_one_disables_retries(env, device, account):
    page = device.lba_size
    faulty = FaultyDevice(device)
    ring = PassthruQueuePair(env, faulty, KernelCosts(),
                             retry=RetryPolicy(max_attempts=1))
    faulty.force_errors(0, 1, count=1, opcode="write")

    def proc():
        try:
            yield from ring.submit_and_wait(
                WriteCmd(lba=0, nlb=1, data=bytes(page)), account)
        except NvmeError:
            return "failed"

    assert drive(env, proc()) == "failed"
    assert ring.counters["retries"] == 0
    assert ring.counters["retry_giveups"] == 1


def test_retry_none_surfaces_the_first_error(env, device, account):
    page = device.lba_size
    faulty = FaultyDevice(device)
    ring = PassthruQueuePair(env, faulty, KernelCosts(), retry=None)
    faulty.force_errors(0, 1, count=1, opcode="write")

    def proc():
        try:
            yield from ring.submit_and_wait(
                WriteCmd(lba=0, nlb=1, data=bytes(page)), account)
        except NvmeError:
            return "failed"

    assert drive(env, proc()) == "failed"
    assert ring.counters["retries"] == 0
    assert ring.counters["retry_giveups"] == 1


def test_retry_counters_reach_obs(env, device, account):
    page = device.lba_size
    faulty = FaultyDevice(device)
    ring = PassthruQueuePair(env, faulty, KernelCosts(), name="test-ring")
    registry = MetricsRegistry(env, name="retry-test")
    ring.attach_obs(registry)
    faulty.force_errors(0, 1, count=1, opcode="write")

    def proc():
        yield from ring.submit_and_wait(
            WriteCmd(lba=0, nlb=1, data=bytes(page)), account)

    drive(env, proc())
    assert registry.counter("uring_retries_total",
                            ring="test-ring").value == 1
    assert registry.counter("uring_retry_giveups_total",
                            ring="test-ring").value == 0
