"""AOF tail classification and its surfacing through RecoveryResult.

``AofCodec.scan`` must tell a *torn* tail (crash fragment — truncate
and carry on, Redis's ``aof-load-truncated``) from *interior*
corruption (CRC-valid records resume after the failure — damaged
media, where silent truncation would drop acknowledged writes).
"""

import pytest

from repro.kernel import CpuAccount
from repro.persist.encoding import (
    AofCodec,
    AofRecord,
    CorruptionError,
    OP_DEL,
    OP_SET,
)
from repro.persist.recovery import recover_store
from repro.sim import Environment

from tests.faults.conftest import drive


def rec(key, value):
    return AofCodec.encode(AofRecord(OP_SET, key, value))


def test_scan_clean_stream():
    blob = rec(b"a", b"1" * 20) + rec(b"b", b"2" * 20)
    result = AofCodec.scan(blob)
    assert [r.key for r in result.records] == [b"a", b"b"]
    assert result.consumed == len(blob)
    assert result.tail_kind == "clean"
    assert result.truncated_at is None


def test_scan_zero_padding_is_clean():
    blob = rec(b"a", b"1" * 20)
    result = AofCodec.scan(blob + bytes(300))
    assert result.tail_kind == "clean"
    assert result.consumed == len(blob)


def test_scan_torn_tail():
    good = rec(b"a", b"1" * 20) + rec(b"b", b"2" * 20)
    torn = rec(b"c", b"3" * 40)[:15]  # crash mid-append
    result = AofCodec.scan(good + torn)
    assert [r.key for r in result.records] == [b"a", b"b"]
    assert result.tail_kind == "torn"
    assert result.truncated_at == len(good)
    assert result.trailing_records == 0


def test_scan_interior_corruption_classified():
    r1 = rec(b"a", b"x" * 30)
    r2 = bytearray(rec(b"b", b"y" * 30))
    r2[15] ^= 0xFF  # damage the value: header decodes, CRC fails
    r3 = rec(b"c", b"z" * 30)
    result = AofCodec.scan(r1 + bytes(r2) + r3)
    assert [r.key for r in result.records] == [b"a"]
    assert result.tail_kind == "interior"
    assert result.truncated_at == len(r1)
    assert result.resync_at == len(r1) + len(r2)
    assert result.trailing_records == 1


def test_scan_strict_raises_with_offsets():
    r1 = rec(b"a", b"x" * 30)
    r2 = bytearray(rec(b"b", b"y" * 30))
    r2[15] ^= 0xFF
    r3 = rec(b"c", b"z" * 30)
    with pytest.raises(CorruptionError) as exc_info:
        AofCodec.scan(r1 + bytes(r2) + r3, strict=True)
    exc = exc_info.value
    assert exc.offset == len(r1)
    assert exc.resync_at == len(r1) + len(r2)
    assert exc.trailing_records == 1


def test_scan_resumes_from_start_offset():
    r1 = rec(b"a", b"1" * 20)
    blob = r1 + rec(b"b", b"2" * 20)
    resumed = AofCodec.scan(blob, start=len(r1))
    assert [r.key for r in resumed.records] == [b"b"]
    assert resumed.consumed == len(blob)


def test_decode_stream_stops_silently_at_damage():
    r1 = rec(b"a", b"x" * 30)
    r2 = bytearray(rec(b"b", b"y" * 30))
    r2[15] ^= 0xFF
    r3 = rec(b"c", b"z" * 30)
    decoded = list(AofCodec.decode_stream(r1 + bytes(r2) + r3))
    assert [r.key for r in decoded] == [b"a"]


class _BlobSink:
    """AppendSink stand-in: recovery reads a pre-built byte stream."""

    def __init__(self, blob):
        self._blob = blob

    def read_all(self, account):
        return self._blob
        yield  # generator form for interface parity


def _recover(blob, strict_wal=False):
    env = Environment()
    acct = CpuAccount(env, "scan-test")
    return drive(env, recover_store(env, None, _BlobSink(blob), acct,
                                    strict_wal=strict_wal))


def test_recovery_result_applies_sets_and_dels():
    blob = (rec(b"a", b"1") + rec(b"b", b"2")
            + AofCodec.encode(AofRecord(OP_DEL, b"a")))
    result = _recover(blob)
    assert result.data == {b"b": b"2"}
    assert result.wal_records_applied == 3
    assert result.wal_tail == "clean"


def test_recovery_result_reports_torn_tail():
    good = rec(b"a", b"1" * 20) + rec(b"b", b"2" * 20)
    result = _recover(good + rec(b"c", b"3" * 20)[:10])
    assert result.data == {b"a": b"1" * 20, b"b": b"2" * 20}
    assert result.wal_tail == "torn"
    assert result.wal_truncated_at == len(good)
    assert result.wal_corrupt_records == 0


def test_recovery_result_reports_interior_corruption():
    r1 = rec(b"a", b"x" * 30)
    r2 = bytearray(rec(b"b", b"y" * 30))
    r2[15] ^= 0xFF
    blob = r1 + bytes(r2) + rec(b"c", b"z" * 30)
    result = _recover(blob)
    assert result.data == {b"a": b"x" * 30}  # prefix applied, damage reported
    assert result.wal_tail == "interior"
    assert result.wal_truncated_at == len(r1)
    assert result.wal_corrupt_records == 1


def test_recovery_strict_mode_raises_on_interior_corruption():
    r1 = rec(b"a", b"x" * 30)
    r2 = bytearray(rec(b"b", b"y" * 30))
    r2[15] ^= 0xFF
    blob = r1 + bytes(r2) + rec(b"c", b"z" * 30)
    with pytest.raises(CorruptionError):
        _recover(blob, strict_wal=True)
