"""Crash-matrix harness regression lanes.

Small deterministic campaigns that must stay green: every power cut
recovers to an acked prefix (both torn models, batched and event-exact
simulator lanes), and the transient-error lane shows real retries with
zero giveups and zero data loss.
"""

import pytest

from repro.faults.harness import (
    CrashMatrixConfig,
    _golden_run,
    build_ops,
    prefix_states,
    run_crash_matrix,
    run_error_lane,
    select_cut_points,
)
from repro.faults.injector import TraceEntry

#: tiny campaign shared by the torn-mode lanes; rotates the WAL at
#: least once (18 ops x ~600B > 8 KiB trigger) and tears a snapshot
SMALL = dict(ops=18, keys=6, snapshot_at=6, wal_trigger_bytes=8 * 1024,
             max_cuts=10, aftershock_ops=4)


def test_build_ops_and_prefix_states_deterministic():
    cfg = CrashMatrixConfig(ops=12)
    a, b = build_ops(cfg), build_ops(cfg)
    assert a == b
    states = prefix_states(a)
    assert len(states) == 13
    assert states[0] == {}
    for j, op in enumerate(a):  # every DEL removes the key it targets
        if op.op == "DEL":
            assert op.key not in states[j + 1]


def test_select_cut_points_exhaustive_when_budget_allows():
    assert select_cut_points([], 5, None) == [0, 1, 2, 3, 4]
    assert select_cut_points([], 5, 8) == [0, 1, 2, 3, 4]


def test_select_cut_points_mixes_interiors_and_boundaries():
    trace = [TraceEntry("write", i, i, i, 1) for i in range(10)]
    trace.append(TraceEntry("write", 10, 10, 100, 6))
    cuts = select_cut_points(trace, 16, 6)
    assert len(cuts) == 6
    assert 13 in cuts  # mid-interior of the 6-page command
    assert 15 in cuts  # its last page
    assert any(c in cuts for c in range(10))  # and command boundaries


@pytest.mark.parametrize("torn", ["prefix", "shuffle"])
def test_crash_matrix_small_campaign_passes(torn):
    cfg = CrashMatrixConfig(torn=torn, **SMALL)
    report = run_crash_matrix(cfg)
    assert report.ok, [o.issues for o in report.failures]
    assert len(report.outcomes) == SMALL["max_cuts"]
    s = report.summary()
    assert s["torn_tails"] >= 1  # torn interiors were actually exercised
    # serial Always-Log driver: durability leads the ack by at most the
    # single in-flight op
    assert s["max_durability_lead"] <= 1


@pytest.mark.parametrize("batched,fast_sim",
                         [(False, True), (True, False), (False, False)])
def test_crash_matrix_simulator_lanes(batched, fast_sim):
    cfg = CrashMatrixConfig(ops=12, keys=5, snapshot_at=4, max_cuts=6,
                            aftershock_ops=0, batched=batched,
                            fast_sim=fast_sim)
    report = run_crash_matrix(cfg)
    assert report.ok, [o.issues for o in report.failures]


def test_crash_matrix_sanitized_lane():
    """Runtime sanitizers stay quiet across recovery + aftershock: the
    restored partial WAL tail page is a legal rewrite target, not a
    monotonicity violation (SanitizerError would fail the cut)."""
    cfg = CrashMatrixConfig(ops=12, keys=5, snapshot_at=4, max_cuts=4,
                            aftershock_ops=4, sanitize=True)
    report = run_crash_matrix(cfg)
    assert report.ok, [o.issues for o in report.failures]


def test_golden_run_trace_is_deterministic():
    cfg = CrashMatrixConfig(ops=12, keys=5, snapshot_at=4)
    sys_cfg = cfg.system_config()
    ops = build_ops(cfg)
    trace1, pages1 = _golden_run(cfg, sys_cfg, ops)
    trace2, pages2 = _golden_run(cfg, sys_cfg, ops)
    assert pages1 == pages2
    assert trace1 == trace2


def test_error_lane_retries_and_loses_nothing():
    lane = run_error_lane(CrashMatrixConfig(ops=30))
    assert lane.ok
    assert lane.errors_injected + lane.timeouts_injected > 0
    assert lane.retries > 0  # the ring demonstrably absorbed failures
    assert lane.giveups == 0
    assert lane.final_state_ok and lane.recovered_state_ok


# ------------------------------------------------------------ causal tracing
def test_crash_matrix_clean_with_tracing_enabled():
    """Tracing every request changes no verdict: the matrix stays
    green and every harvested trace validates (satellite of the
    tail-forensics work)."""
    cfg = CrashMatrixConfig(ops=12, keys=5, snapshot_at=4, max_cuts=6,
                            aftershock_ops=2, trace=True)
    report = run_crash_matrix(cfg)
    assert report.ok, [o.issues for o in report.failures]


def test_power_cut_mid_wal_append_yields_truncated_trace():
    """A cut landing inside a WAL append leaves a well-formed trace:
    every span closed at cut time, the in-flight wal_commit marked
    failed + truncated."""
    from repro.core import SlimIOSystem
    from repro.faults.harness import _driver, _make_device
    from repro.faults.injector import FaultyDevice, PowerCutSpec
    from repro.obs import attach_tracer
    from repro.obs.trace import validate_trace
    from repro.sim import Environment

    cfg = CrashMatrixConfig(ops=18, keys=6, snapshot_at=None,
                            wal_trigger_bytes=8 * 1024)
    sys_cfg = cfg.system_config()
    ops = build_ops(cfg)
    trace, _ = _golden_run(cfg, sys_cfg, ops)
    # a later page write: by then the driver is mid-run, inside the
    # wal_commit of whichever op the cut interrupts
    writes = [e for e in trace if e.kind == "write"]
    cut = writes[len(writes) // 2].first_page

    env = Environment(fast_resume=sys_cfg.fast_sim)
    faulty = FaultyDevice(
        _make_device(env, sys_cfg),
        power=PowerCutSpec(at_page_write=cut, torn="prefix",
                           seed=cfg.seed),
    )
    system = SlimIOSystem(env, sys_cfg, device=faulty)
    tracer = attach_tracer(system, sample_every=1)
    progress = {"started": 0, "acked": 0}
    done = env.process(
        _driver(system, ops, progress, None, cfg.settle),
        name="crash-driver",
    )
    env.run(until=env.any_of([faulty.cut_event, done]))
    system.stop()
    assert faulty.power_lost
    drained = tracer.drain_open()
    assert drained, "the cut should interrupt an in-flight request"

    for ctx in tracer.kept.values():
        assert validate_trace(ctx) == []
    truncated = [c for c in tracer.kept.values() if c.truncated
                 and not c.background]
    assert truncated
    victim = truncated[0]
    cut_spans = [s for s in victim.spans
                 if s.labels.get("truncated") and not s.ok]
    assert cut_spans
    assert any(s.layer == "wal" for s in victim.spans)
