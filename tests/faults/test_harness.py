"""Crash-matrix harness regression lanes.

Small deterministic campaigns that must stay green: every power cut
recovers to an acked prefix (both torn models, batched and event-exact
simulator lanes), and the transient-error lane shows real retries with
zero giveups and zero data loss.
"""

import pytest

from repro.faults.harness import (
    CrashMatrixConfig,
    _golden_run,
    build_ops,
    prefix_states,
    run_crash_matrix,
    run_error_lane,
    select_cut_points,
)
from repro.faults.injector import TraceEntry

#: tiny campaign shared by the torn-mode lanes; rotates the WAL at
#: least once (18 ops x ~600B > 8 KiB trigger) and tears a snapshot
SMALL = dict(ops=18, keys=6, snapshot_at=6, wal_trigger_bytes=8 * 1024,
             max_cuts=10, aftershock_ops=4)


def test_build_ops_and_prefix_states_deterministic():
    cfg = CrashMatrixConfig(ops=12)
    a, b = build_ops(cfg), build_ops(cfg)
    assert a == b
    states = prefix_states(a)
    assert len(states) == 13
    assert states[0] == {}
    for j, op in enumerate(a):  # every DEL removes the key it targets
        if op.op == "DEL":
            assert op.key not in states[j + 1]


def test_select_cut_points_exhaustive_when_budget_allows():
    assert select_cut_points([], 5, None) == [0, 1, 2, 3, 4]
    assert select_cut_points([], 5, 8) == [0, 1, 2, 3, 4]


def test_select_cut_points_mixes_interiors_and_boundaries():
    trace = [TraceEntry("write", i, i, i, 1) for i in range(10)]
    trace.append(TraceEntry("write", 10, 10, 100, 6))
    cuts = select_cut_points(trace, 16, 6)
    assert len(cuts) == 6
    assert 13 in cuts  # mid-interior of the 6-page command
    assert 15 in cuts  # its last page
    assert any(c in cuts for c in range(10))  # and command boundaries


@pytest.mark.parametrize("torn", ["prefix", "shuffle"])
def test_crash_matrix_small_campaign_passes(torn):
    cfg = CrashMatrixConfig(torn=torn, **SMALL)
    report = run_crash_matrix(cfg)
    assert report.ok, [o.issues for o in report.failures]
    assert len(report.outcomes) == SMALL["max_cuts"]
    s = report.summary()
    assert s["torn_tails"] >= 1  # torn interiors were actually exercised
    # serial Always-Log driver: durability leads the ack by at most the
    # single in-flight op
    assert s["max_durability_lead"] <= 1


@pytest.mark.parametrize("batched,fast_sim",
                         [(False, True), (True, False), (False, False)])
def test_crash_matrix_simulator_lanes(batched, fast_sim):
    cfg = CrashMatrixConfig(ops=12, keys=5, snapshot_at=4, max_cuts=6,
                            aftershock_ops=0, batched=batched,
                            fast_sim=fast_sim)
    report = run_crash_matrix(cfg)
    assert report.ok, [o.issues for o in report.failures]


def test_crash_matrix_sanitized_lane():
    """Runtime sanitizers stay quiet across recovery + aftershock: the
    restored partial WAL tail page is a legal rewrite target, not a
    monotonicity violation (SanitizerError would fail the cut)."""
    cfg = CrashMatrixConfig(ops=12, keys=5, snapshot_at=4, max_cuts=4,
                            aftershock_ops=4, sanitize=True)
    report = run_crash_matrix(cfg)
    assert report.ok, [o.issues for o in report.failures]


def test_golden_run_trace_is_deterministic():
    cfg = CrashMatrixConfig(ops=12, keys=5, snapshot_at=4)
    sys_cfg = cfg.system_config()
    ops = build_ops(cfg)
    trace1, pages1 = _golden_run(cfg, sys_cfg, ops)
    trace2, pages2 = _golden_run(cfg, sys_cfg, ops)
    assert pages1 == pages2
    assert trace1 == trace2


def test_error_lane_retries_and_loses_nothing():
    lane = run_error_lane(CrashMatrixConfig(ops=30))
    assert lane.ok
    assert lane.errors_injected + lane.timeouts_injected > 0
    assert lane.retries > 0  # the ring demonstrably absorbed failures
    assert lane.giveups == 0
    assert lane.final_state_ok and lane.recovered_state_ok
