"""Fork-snapshot race detector: a mutation that skips the CoW fault
while the child is alive is caught; the sanctioned path stays clean."""

import pytest

from repro.analysis import SanitizerError
from repro.imdb import ClientOp
from repro.persist import SnapshotKind

from tests.analysis.test_sanitize import CFG, fill, run


def test_direct_mutation_during_snapshot_caught(sanitized_slimio):
    system = sanitized_slimio(config=CFG)
    fill(system, 60)
    env = system.env

    def race():
        system.server.start_snapshot(SnapshotKind.ON_DEMAND)
        yield env.timeout(1e-5)  # child is forked, pages are shared
        assert system.server.cow.snapshot_active
        # mutate the store behind the server's back: no cow.touch(),
        # so the child's frozen view is dirtied — the detector fires
        # on the next mutation, before anything else can go wrong
        system.server.store.set(b"k:0", b"poison")
        system.server.store.set(b"k:1", b"poison")

    with pytest.raises(SanitizerError, match="forkcheck"):
        run(env, race())
    system.stop()


def test_served_writes_during_snapshot_clean(sanitized_slimio):
    system = sanitized_slimio(config=CFG)
    fill(system, 60)
    env = system.env

    def overlap():
        p = system.server.start_snapshot(SnapshotKind.ON_DEMAND)
        yield env.timeout(1e-5)
        assert system.server.cow.snapshot_active
        # the real SET path CoW-faults each mutated page adjacently
        for i in range(20):
            yield from system.server.execute(
                ClientOp("SET", b"k:%d" % i, b"fresh" * 16))
        yield p

    run(env, overlap())
    det = system.sanitizer.fork_detector
    assert det.summary()["races"] == 0
    # only mutations landing while the child was alive are checked
    assert det.summary()["mutations_checked"] > 0
    system.stop()
