"""slimflow CLI: exit codes, baseline drift, SARIF export, fact cache.

Every test builds a miniature ``src/repro/<pkg>/`` tree under tmp_path
and chdirs into it, so the CLI sees the same layout as the real repo
(package scoping and default-path discovery both key off it).
"""

import json

import pytest

from repro.analysis.__main__ import main
from repro.analysis.flow.cli import flow_main

RACY = """\
class Counter:
    def __init__(self, env):
        self.env = env
        self.value = 0

    def bump(self):
        v = self.value
        yield self.env.timeout(1)
        self.value = v + 1

class App:
    def __init__(self, env):
        self.env = env
        self.counter = Counter(env)

    def start(self):
        self.env.process(self.writer_a())
        self.env.process(self.writer_b())

    def writer_a(self):
        yield from self.counter.bump()

    def writer_b(self):
        yield from self.counter.bump()
"""

CLEAN = """\
def add(a, b):
    return a + b
"""


@pytest.fixture
def project(tmp_path, monkeypatch):
    """A tmp repo layout; returns a writer for src/repro/<relpath>."""
    monkeypatch.chdir(tmp_path)

    def put(relpath, source):
        p = tmp_path / "src" / "repro" / relpath
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source, encoding="utf-8")
        return p

    return put


def run(*argv):
    return flow_main(["--cache", "off", *argv])


def test_clean_tree_exits_zero(project, capsys):
    project("persist/app.py", CLEAN)
    assert run() == 0
    out = capsys.readouterr().out
    assert "slimflow: 0 findings" in out


def test_findings_without_baseline_exit_one(project, capsys):
    project("persist/app.py", RACY)
    assert run() == 1
    out = capsys.readouterr().out
    assert "SLIM010" in out


def test_unknown_rule_code_is_a_usage_error(project, capsys):
    project("persist/app.py", CLEAN)
    assert run("--select", "SLIM099") == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_select_can_mask_a_rule(project):
    project("persist/app.py", RACY)
    assert run("--ignore", "SLIM010") == 0


def test_missing_baseline_file_is_a_usage_error(project, capsys):
    project("persist/app.py", CLEAN)
    assert run("--baseline", "nope.json") == 2
    assert "baseline not found" in capsys.readouterr().err


def test_flow_dispatch_via_module_main(project, capsys):
    project("persist/app.py", CLEAN)
    assert main(["flow", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SLIM010", "SLIM011", "SLIM012"):
        assert code in out


# --------------------------------------------------------------------------
# baseline drift
# --------------------------------------------------------------------------

def test_baseline_freezes_known_findings(project, tmp_path, capsys):
    project("persist/app.py", RACY)
    assert run("--write-baseline") == 0
    assert (tmp_path / "slimflow_baseline.json").is_file()
    capsys.readouterr()

    # the same findings are now baselined: auto-discovered, exit 0
    assert run() == 0
    out = capsys.readouterr().out
    assert "0 new, 1 baselined, 0 absolved" in out


def test_new_finding_breaks_the_baseline(project, capsys):
    project("persist/app.py", RACY)
    assert run("--write-baseline") == 0
    capsys.readouterr()

    # a second racy attribute appears: only IT fails the run
    project("persist/app.py", RACY.replace(
        "        self.value = v + 1",
        "        self.value = v + 1\n"
        "        w = self.other\n"
        "        yield self.env.timeout(1)\n"
        "        self.other = w + 1",
    ))
    assert run() == 1
    out = capsys.readouterr().out
    assert "1 new, 1 baselined, 0 absolved" in out
    assert "NEW" in out
    assert "self.other" in out


def test_fixed_finding_is_absolved_not_fatal(project, capsys):
    project("persist/app.py", RACY)
    assert run("--write-baseline") == 0
    capsys.readouterr()

    project("persist/app.py", CLEAN)
    assert run() == 0
    out = capsys.readouterr().out
    assert "0 new, 0 baselined, 1 absolved" in out
    assert "--write-baseline" in out  # nudge to shrink the baseline


def test_no_baseline_flag_restores_strictness(project):
    project("persist/app.py", RACY)
    assert run("--write-baseline") == 0
    assert run() == 0
    assert run("--no-baseline") == 1


def test_baseline_fingerprints_survive_line_motion(project):
    project("persist/app.py", RACY)
    assert run("--write-baseline") == 0
    # prepend 30 lines of comments: every finding moves, none are new
    project("persist/app.py", "# padding\n" * 30 + RACY)
    assert run() == 0


# --------------------------------------------------------------------------
# SARIF
# --------------------------------------------------------------------------

def test_sarif_race_trace_exports_related_locations(project, tmp_path, capsys):
    project("persist/app.py", RACY)
    assert run("--format", "sarif", "--output", "flow.sarif") == 1
    doc = json.loads((tmp_path / "flow.sarif").read_text(encoding="utf-8"))
    driver = doc["runs"][0]["tool"]["driver"]
    assert driver["name"] == "slimflow"
    assert [r["id"] for r in driver["rules"]] == \
        ["SLIM010", "SLIM011", "SLIM012"]
    (res,) = doc["runs"][0]["results"]
    assert res["ruleId"] == "SLIM010"
    related = res["relatedLocations"]
    assert len(related) == 3
    labels = " ".join(loc["message"]["text"] for loc in related)
    assert "read" in labels and "yield" in labels and "write" in labels
    # every related location points back into the same artifact
    uris = {loc["physicalLocation"]["artifactLocation"]["uri"]
            for loc in related}
    assert uris == {res["locations"][0]["physicalLocation"]
                    ["artifactLocation"]["uri"]}


def test_sarif_two_rules_on_one_line(project, tmp_path):
    # an unfenced ack whose reply value is also a tainted RNG draw:
    # SLIM011 and SLIM012 both anchor on the same source line
    project("imdb/app.py", """\
import random

class Server:
    def execute(self, op):
        yield self.cpu.request()
        return encode(repr(random.Random(hash(op)).random()))
""")
    assert run("--format", "sarif", "--output", "flow.sarif") == 1
    doc = json.loads((tmp_path / "flow.sarif").read_text(encoding="utf-8"))
    results = doc["runs"][0]["results"]
    assert sorted(r["ruleId"] for r in results) == ["SLIM011", "SLIM012"]
    lines = {r["locations"][0]["physicalLocation"]["region"]["startLine"]
             for r in results}
    assert lines == {6}


# --------------------------------------------------------------------------
# fact cache
# --------------------------------------------------------------------------

def test_cache_warm_run_reuses_facts(project, tmp_path, capsys):
    project("persist/app.py", RACY)
    cold = flow_main(["--cache", ".slimflow-cache"])
    cache = tmp_path / ".slimflow-cache"
    assert cache.is_dir() and list(cache.glob("*.json"))
    capsys.readouterr()

    warm = flow_main(["--cache", ".slimflow-cache"])
    assert warm == cold == 1
    assert "SLIM010" in capsys.readouterr().out

    # editing the file invalidates only its entry (new digest, new facts)
    project("persist/app.py", CLEAN)
    assert flow_main(["--cache", ".slimflow-cache"]) == 0
