"""Sanitized cluster: live resharding cutover under full runtime
checking, plus a caught cross-slot write in partition coordinates."""

import pytest

from repro.analysis import SanitizerError
from repro.cluster import migrate_slots
from repro.nvme import WriteCmd

from tests.cluster.conftest import SMALL_SYSTEM, drive, route_fill


def _checks(cluster):
    return sum(s.system.sanitizer.summary()["checks"] for s in cluster)


def test_reshard_cutover_sanitized(sanitized_cluster):
    cl = sanitized_cluster(num_shards=2, system=SMALL_SYSTEM)
    route_fill(cl, 80)
    lo, hi = cl.slot_map.shard_range(1)
    mid = (lo + hi) // 2

    mig = drive(cl, migrate_slots(cl, mid, hi, dst=0))
    assert mig.slots_moved == hi - mid
    assert mig.keys_migrated > 0
    # let the periodic flushers drain the retirement DELs
    cl.env.run(until=cl.env.now + 0.05)

    assert _checks(cl) > 0
    for shard in cl:
        assert shard.system.sanitizer.summary()["violations"] == 0
    cl.stop()


def test_cross_slot_write_on_shard_caught(sanitized_cluster):
    """Partition-local coordinates: the shard sanitizer still sees a
    write into a published slot for what it is."""
    cl = sanitized_cluster(num_shards=2, system=SMALL_SYSTEM)
    shard = cl[0].system
    slots = shard.space.slots
    victim = next(i for i in range(3) if i != slots.reserve_slot)
    base, _cap = shard.space.slot_extent(victim)
    cmd = WriteCmd(lba=base, nlb=1,
                   data=b"\x00" * shard.device.lba_size,
                   pid=shard.config.placement.wal_snapshot_pid)

    def proc():
        yield from shard.device.submit(cmd)  # slimlint: ignore[SLIM001]

    with pytest.raises(SanitizerError, match="only the reserve slot"):
        drive(cl, proc())
    cl.stop()
