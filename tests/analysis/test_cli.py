"""slimlint CLI: exit codes, output formats, and the acceptance gate
that the shipped tree itself lints clean."""

import json
from pathlib import Path

from repro.analysis.__main__ import main

REPO = Path(__file__).resolve().parents[2]

CLEAN = "from repro.kernel import iouring\n"
DIRTY = ("import time\n"
         "def f(device, cmd):\n"
         "    t = time.time()\n"
         "    yield from device.submit(cmd)\n")


def _write(tmp_path: Path, source: str) -> Path:
    # park the module under a repro package dir so scoping kicks in
    mod = tmp_path / "src" / "repro" / "imdb" / "mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(source)
    return mod


def test_clean_file_exits_zero(tmp_path, capsys):
    mod = _write(tmp_path, CLEAN)
    assert main([str(mod)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_violations_exit_one(tmp_path, capsys):
    mod = _write(tmp_path, DIRTY)
    assert main([str(mod)]) == 1
    out = capsys.readouterr().out
    assert "SLIM001" in out and "SLIM003" in out


def test_unknown_rule_code_is_usage_error(tmp_path):
    mod = _write(tmp_path, CLEAN)
    assert main([str(mod), "--select", "SLIM999"]) == 2


def test_select_narrows_rules(tmp_path, capsys):
    mod = _write(tmp_path, DIRTY)
    assert main([str(mod), "--select", "SLIM003"]) == 1
    out = capsys.readouterr().out
    assert "SLIM003" in out and "SLIM001" not in out


def test_json_format(tmp_path, capsys):
    mod = _write(tmp_path, DIRTY)
    assert main([str(mod), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert {f["code"] for f in payload["findings"]} == {"SLIM001", "SLIM003"}


def test_sarif_format(tmp_path, capsys):
    mod = _write(tmp_path, DIRTY)
    assert main([str(mod), "--format", "sarif"]) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "slimlint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"SLIM001", "SLIM003"} <= rule_ids
    assert {r["ruleId"] for r in run["results"]} == {"SLIM001", "SLIM003"}


def test_output_file(tmp_path, capsys):
    mod = _write(tmp_path, DIRTY)
    report = tmp_path / "out" / "report.sarif"
    assert main([str(mod), "--format", "sarif",
                 "--output", str(report)]) == 1
    assert json.loads(report.read_text())["version"] == "2.1.0"


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SLIM001", "SLIM008"):
        assert code in out


def test_shipped_tree_is_clean(capsys):
    """Acceptance gate: ``python -m repro.analysis src`` exits 0."""
    assert main([str(REPO / "src")]) == 0
