"""slimlint rule units: each rule catches its seeded violation and
stays quiet on the sanctioned equivalent."""

from repro.analysis import lint_source


def codes(result):
    return [f.code for f in result.findings]


# ------------------------------------------------------------------ SLIM001
def test_slim001_direct_device_access_outside_kernel():
    src = "def f(device, cmd):\n    yield from device.submit(cmd)\n"
    assert codes(lint_source(src, package="imdb")) == ["SLIM001"]
    # the kernel and nvme layers own the device handle
    assert lint_source(src, package="kernel").ok
    assert lint_source(src, package="nvme").ok


def test_slim001_peek_and_suffixed_receivers():
    src = "x = raw_device.peek(0, 1)\n"
    assert codes(lint_source(src, package="core")) == ["SLIM001"]


def test_slim001_line_pragma_suppresses():
    src = ("def f(device, cmd):\n"
           "    yield from device.submit(cmd)"
           "  # slimlint: ignore[SLIM001]\n")
    result = lint_source(src, package="imdb")
    assert result.ok
    assert result.suppressed == 1


# ------------------------------------------------------------------ SLIM002
def test_slim002_pid_literal_outside_placement():
    src = "w = WriteCmd(lba=0, nlb=1, data=b'', pid=3)\n"
    result = lint_source(src, path="src/repro/core/engine.py",
                         package="core")
    assert "SLIM002" in codes(result)
    # the two sanctioned homes for PID numerology
    assert lint_source(src, path="src/repro/core/placement.py",
                       package="core").ok
    assert lint_source(src, path="src/repro/cluster/pids.py",
                       package="cluster").ok


def test_slim002_symbolic_pid_is_fine():
    src = "w = WriteCmd(lba=0, nlb=1, data=b'', pid=policy.wal_pid)\n"
    assert lint_source(src, package="core").ok


# ------------------------------------------------------------------ SLIM003
def test_slim003_wall_clock_and_unseeded_random():
    assert codes(lint_source("import time\nt = time.time()\n",
                             package="bench")) == ["SLIM003"]
    assert codes(lint_source("import random\nx = random.random()\n",
                             package="workloads")) == ["SLIM003"]
    assert codes(lint_source("import random\nr = random.Random()\n",
                             package="workloads")) == ["SLIM003"]


def test_slim003_perf_counter_scoped_to_measurement_shells():
    src = "import time\nt = time.perf_counter()\n"
    assert lint_source(src, path="src/repro/bench/__main__.py",
                       package="bench").ok
    assert lint_source(src, path="src/repro/bench/perf.py",
                       package="bench").ok
    # everywhere else perf_counter is a wall-clock leak
    assert codes(lint_source(src, path="src/repro/imdb/server.py",
                             package="imdb")) == ["SLIM003"]
    assert codes(lint_source(src, package="bench")) == ["SLIM003"]


def test_slim003_seeded_rng_allowed():
    assert lint_source("import random\nr = random.Random(42)\n",
                       package="workloads").ok


# ------------------------------------------------------------------ SLIM004
def test_slim004_layering_inversion():
    src = "from repro.bench import scales\n"
    result = lint_source(src, package="core")
    assert codes(result) == ["SLIM004"]


def test_slim004_downward_import_and_tests_exempt():
    assert lint_source("from repro.kernel import iouring\n",
                       package="core").ok
    # tests may import anything
    assert lint_source("from repro.bench import scales\n",
                       package="core", is_test=True, is_src=False).ok


# ------------------------------------------------------------------ SLIM005
def test_slim005_metric_naming():
    assert codes(lint_source('c = registry.counter("foo")\n',
                             package="obs")) == ["SLIM005"]
    assert codes(lint_source('h = registry.histogram("lat")\n',
                             package="obs")) == ["SLIM005"]
    assert codes(lint_source('g = registry.gauge("x_total")\n',
                             package="obs")) == ["SLIM005"]


def test_slim005_conforming_names_pass():
    src = ('c = registry.counter("wal_flushes_total")\n'
           'h = registry.histogram("flush_seconds")\n'
           'g = registry.gauge("inflight_batches")\n')
    assert lint_source(src, package="obs").ok


# ------------------------------------------------------------------ SLIM006
def test_slim006_ftl_internals_off_limits():
    src = "n = system.ftl.counters\n"
    assert codes(lint_source(src, package="core")) == ["SLIM006"]
    # the flash layer owns its own internals
    assert lint_source(src, package="flash").ok
    # the published surface is fine anywhere
    assert lint_source("s = system.ftl.stats\n", package="core").ok


# ------------------------------------------------------------------ SLIM007
def test_slim007_untagged_write():
    src = "w = WriteCmd(lba=0, nlb=1, data=b'')\n"
    assert codes(lint_source(src, package="core")) == ["SLIM007"]
    # tagged (symbolically) is the sanctioned form
    assert lint_source(
        "w = WriteCmd(lba=0, nlb=1, data=b'', pid=policy.wal_pid)\n",
        package="core").ok
    # layers below the placement policy have no PID to carry
    assert lint_source(src, package="flash").ok


# ------------------------------------------------------------------ SLIM008
def test_slim008_lba_bookkeeping_writes():
    src = "slots.roles = []\n"
    assert codes(lint_source(src, package="imdb")) == ["SLIM008"]
    assert lint_source(src, package="core").ok


# ------------------------------------------------------------------ SLIM009
def test_slim009_real_socket_imports_forbidden_in_net():
    for src in ("import socket\n",
                "import asyncio.streams\n",
                "from socket import AF_INET\n",
                "from ssl import SSLContext\n"):
        assert codes(lint_source(src, package="net")) == ["SLIM009"], src
    # the same imports are SLIM009-clean elsewhere (other rules may
    # still have opinions, so select the one under test)
    assert lint_source("import socket\n", package="bench",
                       select={"SLIM009"}).ok


def test_slim009_wall_clock_forbidden_even_in_measurement_shape():
    # SLIM003 exempts perf_counter in bench/obs measurement shells;
    # SLIM009 grants repro.net no such carve-out
    src = "import time\nt = time.perf_counter()\n"
    got = codes(lint_source(src, package="net"))
    assert "SLIM009" in got
    assert lint_source("t = env.now\n", package="net").ok


def test_slim009_nested_import_still_flagged():
    src = ("def connect():\n"
           "    import socket\n"
           "    return socket\n")
    assert codes(lint_source(src, package="net")) == ["SLIM009"]


def test_slim009_pragma_suppresses():
    src = "import socket  # slimlint: ignore[SLIM009]\n"
    result = lint_source(src, package="net")
    assert result.ok and result.suppressed == 1


# ------------------------------------------------------------------ pragmas
def test_file_pragma_suppresses_everywhere():
    src = ("# slimlint: ignore-file[SLIM003]\n"
           "import time\n"
           "a = time.time()\n"
           "b = time.time()\n")
    result = lint_source(src, package="bench")
    assert result.ok
    assert result.suppressed == 2


def test_pragma_is_rule_scoped():
    # an ignore for one rule must not silence another
    src = ("import time\n"
           "t = time.time()  # slimlint: ignore[SLIM001]\n")
    assert codes(lint_source(src, package="bench")) == ["SLIM003"]


def test_syntax_error_is_reported_not_crashed():
    result = lint_source("def broken(:\n", package="core")
    assert not result.ok
    assert result.errors and "syntax error" in result.errors[0]


# ------------------------------------------------- pragma hardening
def test_unknown_rule_id_in_pragma_is_an_error_not_a_silent_noop():
    src = ("import time\n"
           "t = time.time()  # slim" "lint: ignore[SLIM303]\n")
    result = lint_source(src, package="bench")
    # the typo'd pragma suppresses nothing AND is reported
    assert codes(result) == ["SLIM003"]
    assert result.suppressed == 0
    assert any("unknown rule id" in e and "SLIM303" in e
               for e in result.errors)


def test_mixed_known_and_unknown_codes_keeps_the_known_half():
    src = ("import time\n"
           "t = time.time()  # slim" "lint: ignore[SLIM003, SLIM999]\n")
    result = lint_source(src, package="bench")
    assert codes(result) == []
    assert result.suppressed == 1
    assert any("SLIM999" in e for e in result.errors)


def test_malformed_pragma_attempt_is_diagnosed():
    # missing brackets: the strict pattern skips it, the attempt
    # detector must not
    src = ("import time\n"
           "t = time.time()  # slim" "lint: ignore SLIM003\n")
    result = lint_source(src, package="bench")
    assert codes(result) == ["SLIM003"]
    assert any("malformed slimlint pragma" in e for e in result.errors)


def test_lowercase_rule_id_is_rejected_loudly():
    src = ("import time\n"
           "t = time.time()  # slim" "lint: ignore[slim003]\n")
    result = lint_source(src, package="bench")
    assert codes(result) == ["SLIM003"]
    assert any("unknown rule id" in e for e in result.errors)


def test_empty_code_list_is_diagnosed():
    src = "x = 1  # slim" "lint: ignore[ ]\n"
    result = lint_source(src, package="core")
    assert any("names no rule codes" in e for e in result.errors)


def test_flow_codes_are_pragma_known():
    # slimflow findings share the suppression syntax, so SLIM010-012
    # must not be rejected as unknown ids by slimlint's scanner
    src = "x = 1  # slimlint: ignore[SLIM010]\n"
    result = lint_source(src, package="persist")
    assert result.ok


def test_wellformed_pragma_with_trailing_prose_still_works():
    src = ("import time\n"
           "t = time.time()  # slimlint: ignore[SLIM003] boot-time banner\n")
    result = lint_source(src, package="bench")
    assert result.ok and result.suppressed == 1
