"""slimflow whole-program rules: seeded bad examples must fire, their
fixed counterparts must stay quiet.

Each scenario is a small in-memory module set fed through
``analyze_sources`` — whole-program rules need several modules (or at
least several functions) to mean anything. The capstone tests run the
real tree: pristine ``src/repro`` must be clean, and a copy with the
historical ``WalPath`` flush lock stripped must light up SLIM010.
"""

import shutil
from pathlib import Path

from repro.analysis.flow import analyze_paths, analyze_sources, load_project
from repro.analysis.flow.callgraph import build_callgraph

REPO = Path(__file__).resolve().parents[2]


def codes(result):
    return [f.code for f in result.findings]


# --------------------------------------------------------------------------
# SLIM010 — yield-interleaving races
# --------------------------------------------------------------------------

def _counter_module(bump_body: str) -> dict:
    src = f"""
class Counter:
    def __init__(self, env):
        self.env = env
        self.value = 0
        self.lock = Resource(env, capacity=1)

    def bump(self):
{bump_body}

class App:
    def __init__(self, env):
        self.env = env
        self.counter = Counter(env)

    def start(self):
        self.env.process(self.writer_a())
        self.env.process(self.writer_b())

    def writer_a(self):
        yield from self.counter.bump()

    def writer_b(self):
        yield from self.counter.bump()
"""
    return {"src/repro/persist/fake_counter.py": src}


RACY_BUMP = """\
        v = self.value
        yield self.env.timeout(1)
        self.value = v + 1
"""

LOCKED_BUMP = """\
        req = self.lock.request()
        yield req
        try:
            v = self.value
            yield self.env.timeout(1)
            self.value = v + 1
        finally:
            self.lock.release(req)
"""


def test_slim010_unlocked_read_yield_write_fires():
    result = analyze_sources(_counter_module(RACY_BUMP))
    assert codes(result) == ["SLIM010"]
    f = result.findings[0]
    assert "self.value" in f.message
    assert "Counter.bump" in f.message
    # the race trace names all three steps
    labels = [label for label, _line in f.trace]
    assert any("read" in s for s in labels)
    assert any("yield" in s for s in labels)
    assert any("write" in s for s in labels)


def test_slim010_lock_region_is_quiet():
    result = analyze_sources(_counter_module(LOCKED_BUMP))
    assert codes(result) == []


def test_slim010_single_process_is_quiet():
    # same racy body, but only one simulator process ever runs it
    mods = _counter_module(RACY_BUMP)
    src = mods["src/repro/persist/fake_counter.py"]
    src = src.replace("self.env.process(self.writer_b())", "pass")
    result = analyze_sources({"src/repro/persist/fake_counter.py": src})
    assert codes(result) == []


def test_slim010_pragma_suppresses_with_intent():
    mods = _counter_module(RACY_BUMP.replace(
        "self.value = v + 1",
        "self.value = v + 1  # slimlint: ignore[SLIM010] test intent",
    ))
    result = analyze_sources(mods)
    assert codes(result) == []
    assert result.suppressed == 1


WALPATH_IDIOM = """
class Path:
    def __init__(self, env):
        self.env = env
        self.tail = 0
        self.flush_lock = Resource(env, capacity=1)

    def flush(self):
        req = self.flush_lock.request()
        yield req
        try:
            yield from self._flush_locked()
        finally:
            self.flush_lock.release(req)

    def _flush_locked(self):
        t = self.tail
        yield self.env.timeout(1)
        self.tail = t + 1

class App:
    def __init__(self, env):
        self.env = env
        self.path = Path(env)

    def start(self):
        self.env.process(self.writer_a())
        self.env.process(self.writer_b())

    def writer_a(self):
        yield from self.path.flush()

    def writer_b(self):
        yield from self.path.flush()
"""


def test_slim010_callers_lock_protects_interprocedurally():
    # the WalPath idiom: the racy body lives in _flush_locked, the lock
    # is held by its only caller — the fixpoint must see through it
    result = analyze_sources({"src/repro/persist/fake_path.py": WALPATH_IDIOM})
    assert codes(result) == []


def test_slim010_fires_when_the_lock_is_renamed_away():
    # same module with the lock renamed to something non-lockish: the
    # protection evaporates and the race must surface
    src = WALPATH_IDIOM.replace("flush_lock", "flush_note")
    result = analyze_sources({"src/repro/persist/fake_path.py": src})
    assert "SLIM010" in codes(result)
    assert any("self.tail" in f.message for f in result.findings)


RECHECK = """
class Gate:
    def __init__(self, env):
        self.env = env
        self.pending = 0
        self.window = 4

    def send(self):
        while self.pending >= self.window:
            yield self.env.timeout(1)
        self.pending = 1

class App:
    def __init__(self, env):
        self.env = env
        self.gate = Gate(env)

    def start(self):
        self.env.process(self.writer_a())
        self.env.process(self.writer_b())

    def writer_a(self):
        yield from self.gate.send()

    def writer_b(self):
        yield from self.gate.send()
"""


def test_slim010_while_recheck_idiom_is_quiet():
    # `while cond: yield` re-reads the attribute after every wakeup —
    # the loop back edge puts a read between the yield and the write
    result = analyze_sources({"src/repro/net/fake_gate.py": RECHECK})
    assert codes(result) == []


NONBLOCKING_DELEGATE = """
class Box:
    def __init__(self, env):
        self.env = env
        self.n = 0

    def _account(self):
        return 1
        yield  # generator by construction, never actually parks

    def poke(self):
        v = self.n
        yield from self._account()
        self.n = v + 1

class App:
    def __init__(self, env):
        self.env = env
        self.box = Box(env)

    def start(self):
        self.env.process(self.writer_a())
        self.env.process(self.writer_b())

    def writer_a(self):
        yield from self.box.poke()

    def writer_b(self):
        yield from self.box.poke()
"""


def test_slim010_nonblocking_yield_from_is_quiet():
    # delegating into a generator that never reaches a bare yield is
    # not a preemption point (the repo's zero-cost accounting idiom)
    result = analyze_sources({"src/repro/kernel/fake_box.py": NONBLOCKING_DELEGATE})
    assert codes(result) == []


def test_slim010_blocking_yield_from_fires():
    src = NONBLOCKING_DELEGATE.replace(
        "        return 1\n        yield  # generator by construction, never actually parks",
        "        yield self.env.timeout(1)",
    )
    result = analyze_sources({"src/repro/kernel/fake_box.py": src})
    assert codes(result) == ["SLIM010"]


def test_slim010_fast_forward_resume_points_are_preemptions():
    # The quiescence fast-forward lane introduced three new shapes of
    # resume point: ``yield env.idle_wait(...)`` (collapsible poll),
    # ``yield wake`` of an event bound earlier (the WAL flusher's
    # absorbed-tick wake), and the guarded ``ev = acct.charge(...);
    # if ev is not None: yield ev`` idiom. All three are plain
    # ``ast.Yield`` nodes, so the extractor must keep treating them as
    # bare (always-blocking) preemptions — fast-forward elides
    # *dispatches*, never the interleaving opportunity the static race
    # model has to assume.
    for bump in (
        # collapsible poll wakeup
        "        v = self.value\n"
        "        yield self.env.idle_wait(1)\n"
        "        self.value = v + 1\n",
        # event bound to a name first (flusher 'yield wake' shape)
        "        v = self.value\n"
        "        wake = self.env.timeout(1)\n"
        "        yield wake\n"
        "        self.value = v + 1\n",
        # guarded charge: yield happens on only one CFG path
        "        v = self.value\n"
        "        ev = self.env.charge(1)\n"
        "        if ev is not None:\n"
        "            yield ev\n"
        "        self.value = v + 1\n",
    ):
        result = analyze_sources(_counter_module(bump))
        assert codes(result) == ["SLIM010"], bump


# --------------------------------------------------------------------------
# SLIM011 — seed provenance
# --------------------------------------------------------------------------

def test_slim011_hash_derived_seed_fires():
    src = """
import random

class Sampler:
    def __init__(self, name):
        self.rng = random.Random(abs(hash(name)) % (2**32))
"""
    result = analyze_sources({"src/repro/obs/fake_sampler.py": src})
    assert codes(result) == ["SLIM011"]
    assert "hash()" in result.findings[0].message


def test_slim011_seed_named_sources_are_the_trust_anchor():
    src = """
import random

class Sampler:
    def __init__(self, seed, cfg):
        self.seed = seed
        self.rng = random.Random(seed ^ 0xBEEF)
        self.rng2 = random.Random(self.seed)
        self.rng3 = random.Random(cfg.base_seed if cfg else 0)
"""
    result = analyze_sources({"src/repro/workloads/fake_sampler.py": src})
    assert codes(result) == []


def test_slim011_param_chain_resolves_through_the_call_graph():
    helper = """
import random

def make_rng(x):
    return random.Random(x * 2 + 1)
"""
    good_caller = """
from repro.workloads.fake_helper import make_rng

def build(seed):
    return make_rng(seed ^ 0x5EED)
"""
    result = analyze_sources({
        "src/repro/workloads/fake_helper.py": helper,
        "src/repro/workloads/fake_caller.py": good_caller,
    })
    assert codes(result) == []

    bad_caller = good_caller.replace("make_rng(seed ^ 0x5EED)",
                                     "make_rng(id(object()))")
    result = analyze_sources({
        "src/repro/workloads/fake_helper.py": helper,
        "src/repro/workloads/fake_caller.py": bad_caller,
    })
    assert codes(result) == ["SLIM011"]
    # the finding lands on the RNG construction site, in the helper
    assert result.findings[0].file == "src/repro/workloads/fake_helper.py"


def test_slim011_untraceable_seed_fires():
    src = """
import random

def build(cfg):
    return random.Random(cfg.shard_index)
"""
    result = analyze_sources({"src/repro/workloads/fake_opaque.py": src})
    assert codes(result) == ["SLIM011"]


def test_slim011_unseeded_ctor_fires():
    src = """
import numpy as np

def build():
    return np.random.default_rng()
"""
    result = analyze_sources({"src/repro/obs/fake_unseeded.py": src})
    assert codes(result) == ["SLIM011"]


# --------------------------------------------------------------------------
# SLIM012 — durability protocol
# --------------------------------------------------------------------------

UNFENCED_SERVER = """
class Server:
    def execute(self, op):
        yield self.cpu.request()
        seq = self.wal.stage(op)
        return seq
"""

GATED_SERVER = """
class Server:
    def execute(self, op):
        yield self.cpu.request()
        seq = self.wal.stage(op)
        yield from self.wal.ensure_durable(seq)
        return seq
"""


def test_slim012_unfenced_execute_return_fires():
    result = analyze_sources({"src/repro/imdb/fake_server.py": UNFENCED_SERVER})
    assert codes(result) == ["SLIM012"]
    assert "Server.execute" in result.findings[0].message


def test_slim012_dominating_gate_is_quiet():
    result = analyze_sources({"src/repro/imdb/fake_server.py": GATED_SERVER})
    assert codes(result) == []


def test_slim012_relaxed_tag_documents_the_contract():
    src = UNFENCED_SERVER.replace(
        "return seq",
        "return seq  # slimflow: relaxed-durability — test everysec window",
    )
    result = analyze_sources({"src/repro/imdb/fake_server.py": src})
    assert codes(result) == []


def test_slim012_conditional_gate_is_not_dominating():
    src = """
class Server:
    def execute(self, op):
        yield self.cpu.request()
        seq = self.wal.stage(op)
        if self.policy == "always":
            yield from self.wal.ensure_durable(seq)
        return seq
"""
    result = analyze_sources({"src/repro/imdb/fake_server.py": src})
    assert codes(result) == ["SLIM012"]


CONN = """
class Connection:
    def _dispatch_loop(self, fe, op):
        result = yield from fe.backend.execute(op)
        reply = encode("OK")
        return reply
"""


def test_slim012_resp_ack_delegates_to_the_backend():
    # the dispatcher acks after `yield from backend.execute(op)`; it is
    # covered iff the backend's own ack discipline is
    result = analyze_sources({
        "src/repro/net/fake_conn.py": CONN,
        "src/repro/imdb/fake_server.py": GATED_SERVER,
    })
    assert codes(result) == []

    result = analyze_sources({
        "src/repro/net/fake_conn.py": CONN,
        "src/repro/imdb/fake_server.py": UNFENCED_SERVER,
    })
    assert sorted(codes(result)) == ["SLIM012", "SLIM012"]


def test_slim012_scope_is_imdb_and_net_only():
    # the same unfenced shape outside imdb/net is not an ack path
    src = UNFENCED_SERVER
    result = analyze_sources({"src/repro/flash/fake_server.py": src})
    assert codes(result) == []


# --------------------------------------------------------------------------
# the real tree
# --------------------------------------------------------------------------

def test_shipped_tree_is_flow_clean():
    result = analyze_paths([str(REPO / "src" / "repro")], root=REPO)
    assert result.errors == []
    assert [f.render() for f in result.findings] == []


def test_walpath_race_caught_when_its_lock_is_stripped(tmp_path):
    """The acceptance-criteria mutation: strip the WalPath flush lock
    (the PR 3 race, historically caught only at runtime) and SLIM010
    must catch it statically."""
    tree = tmp_path / "src" / "repro"
    shutil.copytree(REPO / "src" / "repro", tree)
    paths_py = tree / "core" / "paths.py"
    mutated = paths_py.read_text(encoding="utf-8").replace(
        "_flush_lock", "_flush_note")
    assert "_flush_note" in mutated, "WalPath lock idiom moved; update test"
    paths_py.write_text(mutated, encoding="utf-8")

    result = analyze_paths([str(tree)], root=tmp_path)
    races = [f for f in result.findings
             if f.code == "SLIM010" and f.file.endswith("core/paths.py")]
    assert races, "lock-stripped WalPath race was not detected"
    attrs = {f.message.split("`")[1] for f in races}
    assert any(a.startswith("self._tail") or a.startswith("self._staged")
               for a in attrs), attrs


def test_fact_cache_round_trip(tmp_path):
    cache = tmp_path / "cache"
    src_dir = str(REPO / "src" / "repro" / "persist")
    cold = load_project([src_dir], root=REPO, cache_dir=cache)
    warm = load_project([src_dir], root=REPO, cache_dir=cache)
    assert cold.cache_hits == 0
    assert warm.cache_hits == warm.files_checked == cold.files_checked
    # cached facts must reproduce the analysis exactly
    cold_g = build_callgraph(cold)
    warm_g = build_callgraph(warm)
    assert cold_g.roots == warm_g.roots
    assert cold_g.shared_classes == warm_g.shared_classes
    assert cold_g.always_under_lock == warm_g.always_under_lock
    assert sorted(f.ref for f in cold.functions()) == \
        sorted(f.ref for f in warm.functions())
