"""Runtime sanitizer: clean passes on the nasty paths and a caught
violation for every check class (region, PID, cursor, slot, trim)."""

import pytest

from repro import LoggingPolicy, SystemConfig
from repro.analysis import SanitizerError
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ClientOp
from repro.nvme import DeallocateCmd, WriteCmd
from repro.persist import SnapshotKind

CFG = SystemConfig(
    geometry=FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=48,
                           pages_per_block=16),
    nand=NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                    channel_transfer=0.0),
    ftl=FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                  gc_reserve_segments=2),
    policy=LoggingPolicy.ALWAYS,
    wal_flush_interval=0.01,
)


def run(env, gen):
    return env.run(until=env.process(gen))


def fill(system, n, tag=b"k"):
    def proc():
        for i in range(n):
            yield from system.server.execute(
                ClientOp("SET", b"%s:%d" % (tag, i), b"v" * 256))

    run(system.env, proc())


def inject(system, cmd):
    """Push one raw command through the sanitized device."""

    def proc():
        yield from system.device.submit(cmd)  # slimlint: ignore[SLIM001]

    run(system.env, proc())


def page(system, n=1):
    return b"\x00" * (system.device.lba_size * n)


# ------------------------------------------------------------------ clean runs
def test_clean_workload_counts_checks(sanitized_slimio):
    system = sanitized_slimio(config=CFG)
    fill(system, 50)
    summary = system.sanitizer.summary()
    assert summary["violations"] == 0
    assert summary["checks"] > 0
    system.stop()


def test_snapshot_cycle_clean(sanitized_slimio):
    system = sanitized_slimio(config=CFG)
    fill(system, 40)

    def snap():
        stats = yield system.server.start_snapshot(SnapshotKind.ON_DEMAND)
        return stats

    stats = run(system.env, snap())
    assert stats.entries == 40
    assert system.sanitizer.summary()["violations"] == 0
    system.space.slots.check_invariants()
    system.stop()


# ------------------------------------------------------------------ injections
def test_write_into_published_slot_caught(sanitized_slimio):
    system = sanitized_slimio(config=CFG)
    slots = system.space.slots
    victim = next(i for i in range(3) if i != slots.reserve_slot)
    base, _cap = system.space.slot_extent(victim)
    cmd = WriteCmd(lba=base, nlb=1, data=page(system),
                   pid=system.config.placement.wal_snapshot_pid)
    with pytest.raises(SanitizerError, match="only the reserve slot"):
        inject(system, cmd)
    system.stop()


def test_wal_write_with_wrong_pid_caught(sanitized_slimio):
    system = sanitized_slimio(config=CFG)
    lay = system.space.layout
    cmd = WriteCmd(lba=lay.wal_base, nlb=1, data=page(system),
                   pid=system.config.placement.metadata_pid)
    with pytest.raises(SanitizerError, match="expected WAL PID"):
        inject(system, cmd)
    system.stop()


def test_non_monotonic_wal_write_caught(sanitized_slimio):
    system = sanitized_slimio(config=CFG)
    lay = system.space.layout
    cmd = WriteCmd(lba=lay.wal_base + 5, nlb=1, data=page(system),
                   pid=system.config.placement.wal_pid)
    with pytest.raises(SanitizerError, match="non-monotonic WAL write"):
        inject(system, cmd)
    system.stop()


def test_over_range_pid_caught(sanitized_slimio):
    system = sanitized_slimio(config=CFG)
    lay = system.space.layout
    cmd = WriteCmd(lba=lay.wal_base, nlb=1, data=page(system),
                   pid=99)  # slimlint: ignore[SLIM002]
    with pytest.raises(SanitizerError, match="fall back to stream 0"):
        inject(system, cmd)
    system.stop()


def test_promotion_without_snapshot_write_caught(sanitized_slimio):
    system = sanitized_slimio(config=CFG)
    with pytest.raises(SanitizerError, match="reserve-slot-first"):
        system.space.slots.promote(SnapshotKind.WAL_TRIGGERED, 0)
    system.stop()


def test_metadata_trim_caught(sanitized_slimio):
    system = sanitized_slimio(config=CFG)
    with pytest.raises(SanitizerError, match="never trimmed"):
        inject(system, DeallocateCmd(lba=0, nlb=1))
    system.stop()


# ------------------------------------------------------------------ nasty paths
def test_recovery_replay_resumes_cursor(sanitized_slimio):
    """Crash → §4.2 recovery → the sanitizer tracks the restored head."""
    system = sanitized_slimio(config=CFG)
    fill(system, 30)
    system.crash()
    result = run(system.env, system.recover())
    assert result.data.get(b"k:0") == b"v" * 256
    assert result.data.get(b"k:29") == b"v" * 256

    # a write continuing exactly at the restored head is legal...
    san = system.sanitizer
    cmd = WriteCmd(lba=san._wal_next, nlb=1, data=page(system),
                   pid=system.config.placement.wal_pid)
    inject(system, cmd)
    assert san.summary()["violations"] == 0

    # ...one that skips past it is a replay-ordering violation
    bad = WriteCmd(lba=san._wal_next + 7, nlb=1, data=page(system),
                   pid=system.config.placement.wal_pid)
    with pytest.raises(SanitizerError, match="non-monotonic WAL write"):
        inject(system, bad)
    system.stop()


def test_promotion_after_aborted_snapshot(sanitized_slimio):
    """A failed snapshot must not wedge the slot state machine."""
    system = sanitized_slimio(config=CFG)
    fill(system, 10)
    sink = system._make_snapshot_sink(SnapshotKind.ON_DEMAND)
    acct = system.main_account
    pg = system.device.lba_size

    def failed_then_clean():
        # first attempt streams a couple of pages, then dies pre-finalize
        yield from sink.write(b"a" * pg * 2, acct)
        sink.abort()
        # the retry starts over in the same reserve slot and promotes
        yield from sink.write(b"b" * pg, acct)
        yield from sink.finalize(acct)

    run(system.env, failed_then_clean())
    assert system.sanitizer.summary()["violations"] == 0
    system.space.slots.check_invariants()
    system.stop()
