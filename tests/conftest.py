"""Repo-wide fixtures: sanitizer-enabled system builders.

Any test can take ``sanitized_slimio`` (or ``sanitized_cluster``) to
stand up a system with the :mod:`repro.analysis` runtime sanitizers
active — every device command is validated against the §4.2 contract
and fork-snapshot races are detected, so an invariant regression fails
the test that provoked it instead of silently skewing WAF.
"""

import pytest

from repro.core.engine import SystemConfig, build_slimio
from repro.sim import Environment


@pytest.fixture
def sanitized_slimio():
    """Factory: ``build_slimio`` with ``sanitize=True`` baked in."""

    def build(env=None, config=None, **overrides):
        overrides.setdefault("sanitize", True)
        return build_slimio(env or Environment(), config, **overrides)

    return build


@pytest.fixture
def sanitized_cluster():
    """Factory: a SlimIO cluster whose shards all run sanitized."""

    def build(env=None, **kw):
        from repro.cluster.engine import ClusterConfig, SlimIOCluster

        system = kw.pop("system", None) or SystemConfig(sanitize=True)
        if not system.sanitize:
            from dataclasses import replace

            system = replace(system, sanitize=True)
        cfg = ClusterConfig(system=system, **kw)
        return SlimIOCluster(env or Environment(), cfg)

    return build
