"""Live slot migration: transfer, cutover, retire, recover."""

import pytest

from repro.cluster import key_hash_slot, migrate_slots
from repro.core.verify import verify_lba_space
from repro.imdb import ClientOp
from repro.persist import SnapshotKind

from tests.cluster.conftest import drive, route_fill


def _split(cluster, shard):
    lo, hi = cluster.slot_map.shard_range(shard)
    return lo, (lo + hi) // 2, hi


def test_migration_moves_exactly_the_range(two_shards):
    cl = two_shards
    keys = route_fill(cl, 120)
    before = {}
    for shard in cl:
        before.update(dict(shard.server.store.snapshot_items()))
    lo, mid, hi = _split(cl, 1)

    mig = drive(cl, migrate_slots(cl, mid, hi, dst=0))
    assert mig.slots_moved == hi - mid
    assert mig.keys_migrated > 0
    assert mig.keys_retired == mig.keys_migrated

    moved = [k for k in keys if mid <= key_hash_slot(k) < hi]
    assert len(moved) == mig.keys_migrated
    for key in moved:
        assert cl.slot_map.shard_for_key(key) == 0
        assert cl[0].server.store.get(key) == before[key]
        assert cl[1].server.store.get(key) is None
    # keys outside the range never moved
    for key in set(keys) - set(moved):
        owner = cl.slot_map.shard_for_key(key)
        assert cl[owner].server.store.get(key) == before[key]
    # nothing lost: the union of both stores is the original dataset
    after = {}
    for shard in cl:
        after.update(dict(shard.server.store.snapshot_items()))
    assert after == before


def test_migration_under_concurrent_writes(two_shards):
    cl = two_shards
    route_fill(cl, 80)
    lo, mid, hi = _split(cl, 1)
    in_range = [k for k in (b"live:%d" % i for i in range(200))
                if mid <= key_hash_slot(k) < hi][:10]
    done = {}

    def migrate():
        done["mig"] = yield from migrate_slots(cl, mid, hi, dst=0)

    def writer():
        for key in in_range:
            yield from cl.router.execute(ClientOp("SET", key, b"v" * 64))
            yield cl.env.timeout(2e-4)

    p = cl.env.process(migrate())
    cl.env.process(writer())
    cl.env.run(until=p)
    cl.env.run(until=cl.env.timeout(5e-3))
    # every concurrently written in-range key ends up on the new owner
    for key in in_range:
        assert cl.slot_map.shard_for_key(key) == 0
        assert cl[0].server.store.get(key) == b"v" * 64
        assert cl[1].server.store.get(key) is None


def test_both_shards_recover_after_migration(two_shards):
    cl = two_shards
    route_fill(cl, 100)
    lo, mid, hi = _split(cl, 1)
    drive(cl, migrate_slots(cl, mid, hi, dst=0))

    # the migration's full_sync left an On-Demand snapshot on the
    # source; its DEL retirements are WAL-logged after the fork, so
    # recovery reproduces the shrunken store byte for byte
    src = drive(cl, cl[1].system.recover(SnapshotKind.ON_DEMAND))
    assert src.data == cl[1].server.store.as_dict()

    # the destination has only WAL-logged the inbound keys — recovery
    # needs at least one completed snapshot (metadata record), so the
    # new owner checkpoints after taking ownership
    def checkpoint():
        stats = yield cl[0].server.start_snapshot(SnapshotKind.ON_DEMAND)
        assert stats.ok

    drive(cl, checkpoint())
    dst = drive(cl, cl[0].system.recover(SnapshotKind.ON_DEMAND))
    assert dst.data == cl[0].server.store.as_dict()

    frac = cl.config.system.snapshot_fraction
    for shard in cl:
        report = verify_lba_space(shard.partition, snapshot_fraction=frac)
        assert bool(report), report


def test_range_must_have_one_owner(four_shards):
    cl = four_shards
    lo1, _ = cl.slot_map.shard_range(1)
    _, hi2 = cl.slot_map.shard_range(2)
    gen = migrate_slots(cl, lo1, hi2, dst=0)
    with pytest.raises(ValueError, match="span owners"):
        next(gen)


def test_noop_migration_rejected(two_shards):
    cl = two_shards
    _, mid, hi = _split(cl, 1)
    gen = migrate_slots(cl, mid, hi, dst=1)
    with pytest.raises(ValueError, match="already on shard"):
        next(gen)
