"""PID allocator: dedicated-first carving and the sharing fallbacks."""

import pytest

from repro.cluster import PidAllocator, SharingMode
from repro.core.placement import validate_placement


def test_dedicated_while_pids_last():
    alloc = PidAllocator(8)
    for n in (1, 2):
        policies = alloc.allocate(n)
        pids = [p for policy in policies for p in policy.pids]
        assert len(pids) == len(set(pids)), "dedicated PIDs must not overlap"
        assert all(0 <= p < 8 for p in pids)
        assert not any(p.collapse_snapshots for p in policies)


def test_auto_mode_ladder():
    assert PidAllocator.auto_mode(8, 1) is SharingMode.DEDICATED
    assert PidAllocator.auto_mode(8, 2) is SharingMode.DEDICATED
    assert PidAllocator.auto_mode(8, 3) is SharingMode.COLLAPSE
    assert PidAllocator.auto_mode(8, 6) is SharingMode.COLLAPSE
    assert PidAllocator.auto_mode(8, 7) is SharingMode.SHARE_WAL
    assert PidAllocator.auto_mode(8, 64) is SharingMode.SHARE_WAL
    assert PidAllocator.auto_mode(16, 4) is SharingMode.DEDICATED


def test_dedicated_mode_refuses_to_share():
    alloc = PidAllocator(8, mode=SharingMode.DEDICATED)
    assert alloc.allocate(2)  # fits
    with pytest.raises(ValueError, match="DEDICATED"):
        alloc.allocate(3)


def test_collapse_layout():
    alloc = PidAllocator(8, mode=SharingMode.COLLAPSE)
    policies = alloc.allocate(4)
    assert all(p.metadata_pid == 0 for p in policies)
    wal_pids = [p.wal_pid for p in policies]
    assert wal_pids == [1, 2, 3, 4], "each shard keeps a dedicated WAL PID"
    for p in policies:
        assert p.collapse_snapshots
        assert p.wal_snapshot_pid == p.ondemand_snapshot_pid
        assert p.wal_snapshot_pid in range(5, 8)


def test_collapse_needs_pool():
    alloc = PidAllocator(8, mode=SharingMode.COLLAPSE)
    with pytest.raises(ValueError, match="SHARE_WAL"):
        alloc.allocate(7)  # 7 WALs + meta leave no snapshot PID


def test_share_wal_layout():
    alloc = PidAllocator(8, mode=SharingMode.SHARE_WAL)
    policies = alloc.allocate(8)
    assert all(p.metadata_pid == 0 for p in policies)
    assert all(p.wal_snapshot_pid == 1 for p in policies)
    assert all(p.ondemand_snapshot_pid == 2 for p in policies)
    wal_pids = [p.wal_pid for p in policies]
    assert set(wal_pids) == set(range(3, 8))
    # 8 shards over 5 WAL PIDs: the round-robin pairs shards up
    assert wal_pids[0] == wal_pids[5]


def test_every_policy_fits_the_device():
    for mode in SharingMode:
        for n in (1, 2, 4, 8, 16):
            alloc = PidAllocator(8, mode=mode)
            try:
                policies = alloc.allocate(n)
            except ValueError:
                continue
            for policy in policies:
                validate_placement(policy, 8)


def test_describe():
    alloc = PidAllocator(8)
    d = alloc.describe(2)
    assert d["mode"] == "dedicated"
    assert d["shared_pids"] == []
    assert len(d["pids_per_shard"]) == 2

    d = PidAllocator(8, mode=SharingMode.COLLAPSE).describe(4)
    assert d["mode"] == "collapse"
    assert 0 in d["shared_pids"]


def test_too_few_pids_rejected():
    with pytest.raises(ValueError):
        PidAllocator(3)
    with pytest.raises(ValueError):
        PidAllocator(8).allocate(0)
