"""Cluster construction: shared device, PID budgeting, fail-fast."""

import pytest

from repro.cluster import ClusterConfig, SharingMode, build_cluster
from repro.core import SystemConfig
from repro.core.engine import SlimIOSystem
from repro.sim import Environment

from tests.cluster.conftest import SMALL_SYSTEM, make_cluster


def test_shards_share_one_device(two_shards):
    cl = two_shards
    assert len(cl) == 2
    assert [s.name for s in cl] == ["shard0", "shard1"]
    device = cl.device
    for shard in cl:
        assert shard.partition.device is device
    # partitions tile the namespace without overlap
    assert cl[0].partition.base + cl[0].partition.num_lbas \
        == cl[1].partition.base


def test_dedicated_pids_below_the_wall(two_shards):
    pids0 = set(two_shards[0].policy.pids)
    pids1 = set(two_shards[1].policy.pids)
    assert pids0.isdisjoint(pids1)
    assert two_shards.pid_report()["mode"] == "dedicated"


def test_sharing_kicks_in_at_four(four_shards):
    report = four_shards.pid_report()
    assert report["mode"] == "collapse"
    assert report["shared_pids"]  # at least metadata PID 0


def test_explicit_sharing_mode_respected():
    cl = make_cluster(4, sharing=SharingMode.SHARE_WAL)
    assert cl.pid_report()["mode"] == "share-wal"
    cl.stop()


def test_baseline_cluster_has_no_pids():
    cl = make_cluster(2, design="baseline")
    assert all(s.policy is None for s in cl)
    assert cl.pid_report() == {}
    assert cl.device.fdp is False
    cl.stop()


def test_shard_waf_starts_clean(four_shards):
    for i in range(4):
        assert four_shards.shard_waf(i) == 1.0


def test_attach_obs_labels_shards(four_shards):
    registry = four_shards.attach_obs()
    assert four_shards.obs is registry
    shards = {
        m.labels["shard"]
        for m in registry.instruments()
        if "shard" in m.labels
    }
    assert shards == {"shard0", "shard1", "shard2", "shard3"}


def test_config_validation():
    with pytest.raises(ValueError, match="num_shards"):
        ClusterConfig(num_shards=0)
    with pytest.raises(ValueError, match="design"):
        ClusterConfig(design="redis")


def test_oversubscribed_policy_fails_at_build_time():
    # the default 4-PID policy cannot land on a 2-PID device: the
    # builder must refuse instead of silently writing stream 0
    env = Environment()
    cfg = SystemConfig(
        geometry=SMALL_SYSTEM.geometry, nand=SMALL_SYSTEM.nand,
        ftl=SMALL_SYSTEM.ftl, num_pids=2,
    )
    with pytest.raises(ValueError, match="PID"):
        SlimIOSystem(env, cfg)


def test_num_pids_validation():
    with pytest.raises(ValueError):
        SystemConfig(num_pids=0)
