"""Slot routing: the router agrees with the map and serves round-trips."""

from repro.cluster import key_hash_slot
from repro.imdb import ClientOp

from tests.cluster.conftest import drive, route_fill


def test_routing_agrees_with_slot_map(four_shards):
    cl = four_shards
    for key in (b"alpha", b"user:42", b"{tag}suffix", b"x" * 40):
        shard = cl.router.shard_for_key(key)
        assert shard.index == cl.slot_map.shard_for_key(key)
        assert cl.router.slot_of(key) == key_hash_slot(key)


def test_execute_round_trip(four_shards):
    cl = four_shards
    keys = route_fill(cl, 40)
    for key in keys[:10]:
        value = drive(cl, cl.router.execute(ClientOp("GET", key)))
        assert value is not None
        owner = cl.router.shard_for_key(key)
        assert owner.server.store.get(key) == value


def test_keys_land_only_on_their_owner(four_shards):
    cl = four_shards
    keys = route_fill(cl, 60)
    for key in keys:
        owner = cl.slot_map.shard_for_key(key)
        for shard in cl:
            present = shard.server.store.get(key) is not None
            assert present == (shard.index == owner)


def test_routed_counters(four_shards):
    cl = four_shards
    route_fill(cl, 50)
    assert sum(cl.router.routed) == 50
    # zipf-free uniform key names touch every shard eventually
    assert all(n >= 0 for n in cl.router.routed)


def test_hash_tags_colocate(four_shards):
    cl = four_shards
    a = cl.router.shard_for_key(b"{user9}.cart")
    b = cl.router.shard_for_key(b"{user9}.profile")
    assert a.index == b.index
