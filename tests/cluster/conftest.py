"""Shared fixtures: a tiny cluster that builds and runs in milliseconds."""

import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.core import SystemConfig
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ClientOp
from repro.workloads import make_value

SMALL_SYSTEM = SystemConfig(
    geometry=FlashGeometry(channels=1, dies_per_channel=2,
                           blocks_per_die=64, pages_per_block=16),
    nand=NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                    channel_transfer=0.0),
    ftl=FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                  gc_reserve_segments=2),
    wal_flush_interval=0.01,
    fs_extent_pages=16,
)


def make_cluster(num_shards=2, design="slimio", **overrides):
    cfg = ClusterConfig(num_shards=num_shards, design=design,
                        system=SMALL_SYSTEM, **overrides)
    return build_cluster(config=cfg)


def route_fill(cluster, n, value_size=512, tag=b""):
    """SET n keys through the router; returns the keys."""
    keys = [tag + b"key:%d" % i for i in range(n)]

    def filler():
        for key in keys:
            yield from cluster.router.execute(
                ClientOp("SET", key, make_value(key, value_size)))

    cluster.env.run(until=cluster.env.process(filler()))
    return keys


def drive(cluster, gen):
    return cluster.env.run(until=cluster.env.process(gen))


@pytest.fixture
def two_shards():
    cluster = make_cluster(2)
    yield cluster
    cluster.stop()


@pytest.fixture
def four_shards():
    cluster = make_cluster(4)
    yield cluster
    cluster.stop()
