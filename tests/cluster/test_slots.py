"""Hash-slot key space: CRC16, hash tags, slot map ownership."""

import pytest

from repro.cluster import NUM_SLOTS, HashSlotMap, crc16, key_hash_slot


def test_crc16_canonical_vector():
    # the CCITT/XModem check value Redis documents for its slot hash
    assert crc16(b"123456789") == 0x31C3


def test_crc16_empty_and_single():
    assert crc16(b"") == 0
    assert 0 <= crc16(b"a") <= 0xFFFF


def test_slot_range():
    for key in (b"", b"a", b"user:1001", b"x" * 100):
        assert 0 <= key_hash_slot(key) < NUM_SLOTS


def test_hash_tags_pin_related_keys():
    assert (
        key_hash_slot(b"{user1000}.cart")
        == key_hash_slot(b"{user1000}.profile")
        == key_hash_slot(b"user1000")
    )


def test_empty_tag_hashes_whole_key():
    # Redis rule: {} with an empty body is not a tag
    assert key_hash_slot(b"{}x") == crc16(b"{}x") % NUM_SLOTS


def test_unclosed_brace_hashes_whole_key():
    assert key_hash_slot(b"{abc") == crc16(b"{abc") % NUM_SLOTS


def test_first_tag_wins():
    assert key_hash_slot(b"{a}{b}") == key_hash_slot(b"a")


def test_str_keys_accepted():
    assert key_hash_slot("user:1001") == key_hash_slot(b"user:1001")


def test_initial_ranges_even_and_contiguous():
    m = HashSlotMap(4)
    assert m.slot_counts() == [NUM_SLOTS // 4] * 4
    for shard in range(4):
        lo, hi = m.shard_range(shard)
        assert m.slots_of(shard) == list(range(lo, hi))


def test_uneven_division_covers_every_slot():
    m = HashSlotMap(3)
    assert sum(m.slot_counts()) == NUM_SLOTS
    assert min(m.slot_counts()) >= NUM_SLOTS // 3


def test_single_shard_owns_everything():
    m = HashSlotMap(1)
    assert m.slot_counts() == [NUM_SLOTS]
    assert m.shard_for_key(b"anything") == 0


def test_move_reassigns_and_counts():
    m = HashSlotMap(2)
    lo, hi = m.shard_range(1)
    moved = m.move(lo, lo + 100, 0)
    assert moved == 100
    assert all(m.shard_for_slot(s) == 0 for s in range(lo, lo + 100))
    assert m.shard_for_slot(lo + 100) == 1
    # idempotent: the range is already owned by 0
    assert m.move(lo, lo + 100, 0) == 0
    assert m.slot_counts() == [NUM_SLOTS // 2 + 100, NUM_SLOTS // 2 - 100]


def test_validation():
    with pytest.raises(ValueError):
        HashSlotMap(0)
    m = HashSlotMap(2)
    with pytest.raises(ValueError):
        m.shard_for_slot(NUM_SLOTS)
    with pytest.raises(ValueError):
        m.shard_range(2)
    with pytest.raises(ValueError):
        m.move(10, 10, 0)  # empty range
    with pytest.raises(ValueError):
        m.move(0, 10, 5)  # no such shard
