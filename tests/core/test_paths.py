"""WAL-Path / Snapshot-Path / read-ahead tests over the FDP device."""

import pytest

from repro.core import LbaSpaceManager, MetadataStore, ReadAheadBuffer, SlotRole
from repro.core.paths import SlimIOSnapshotSource, SnapshotPath, WalPath
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.kernel import CpuAccount, KernelCosts, PassthruQueuePair
from repro.nvme import NvmeDevice, WriteCmd
from repro.persist import (
    AofCodec,
    AofRecord,
    OP_SET,
    SnapshotKind,
    SnapshotWriterProcess,
    recover_store,
)
from repro.sim import Environment

FAST = NandTiming(page_read=1e-6, page_program=2e-6, block_erase=10e-6,
                  channel_transfer=0.0)
CFG = FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                gc_reserve_segments=2)


@pytest.fixture
def world():
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=48,
                      pages_per_block=16)
    dev = NvmeDevice(env, g, FAST, CFG, fdp=True)
    ring = PassthruQueuePair(env, dev, KernelCosts())
    space = LbaSpaceManager(dev.num_lbas)
    meta = MetadataStore(ring, space.layout)
    acct = CpuAccount(env, "main")
    return env, dev, ring, space, meta, acct


def drive(env, gen):
    p = env.process(gen)
    return env.run(until=p)


def make_wal(env, ring, space, meta, acct):
    return WalPath(env, ring, space, meta, acct)


def test_wal_append_flush_readback(world):
    env, dev, ring, space, meta, acct = world
    wal = make_wal(env, ring, space, meta, acct)
    recs = [AofRecord(op=OP_SET, key=b"k%d" % i, value=b"v" * 100)
            for i in range(20)]

    def proc():
        for r in recs:
            yield from wal.append(AofCodec.encode(r), acct)
        yield from wal.flush(acct)
        data = yield from wal.read_all(acct)
        return data

    data = drive(env, proc())
    assert list(AofCodec.decode_stream(data)) == recs
    assert wal.size == sum(len(AofCodec.encode(r)) for r in recs)


def test_wal_tail_page_rewritten_across_flushes(world):
    env, dev, ring, space, meta, acct = world
    wal = make_wal(env, ring, space, meta, acct)
    r1 = AofRecord(op=OP_SET, key=b"a", value=b"1" * 10)
    r2 = AofRecord(op=OP_SET, key=b"b", value=b"2" * 10)

    def proc():
        yield from wal.append(AofCodec.encode(r1), acct)
        yield from wal.flush(acct)
        yield from wal.append(AofCodec.encode(r2), acct)
        yield from wal.flush(acct)
        data = yield from wal.read_all(acct)
        return data

    data = drive(env, proc())
    assert list(AofCodec.decode_stream(data)) == [r1, r2]
    # both records share the first WAL page
    assert space.wal.head == 1


def test_wal_records_durable_without_metadata_update(world):
    """Metadata head is a hint: records past it are found by scanning."""
    env, dev, ring, space, meta, acct = world
    wal = make_wal(env, ring, space, meta, acct)
    recs = [AofRecord(op=OP_SET, key=b"k%d" % i, value=b"v" * 3000)
            for i in range(8)]

    def write():
        for r in recs:
            yield from wal.append(AofCodec.encode(r), acct)
        yield from wal.flush(acct)

    drive(env, write())
    # crash: rebuild the path with a STALE head (simulating metadata lag)
    wal2 = make_wal(env, ring, space, meta, acct)
    space.wal.head = 1  # pretend metadata only saw the first page

    def read():
        data = yield from wal2.read_all(acct)
        return data

    data = drive(env, read())
    assert list(AofCodec.decode_stream(data)) == recs


def test_wal_generation_switch_and_retire(world):
    env, dev, ring, space, meta, acct = world
    wal = make_wal(env, ring, space, meta, acct)
    rec = AofRecord(op=OP_SET, key=b"old", value=b"x" * 5000)

    def proc():
        yield from wal.append(AofCodec.encode(rec), acct)
        yield from wal.flush(acct)
        old_head = space.wal.head
        yield from wal.begin_generation(acct)
        assert space.wal.gen_start == old_head
        yield from wal.append(
            AofCodec.encode(AofRecord(op=OP_SET, key=b"new", value=b"y")), acct)
        yield from wal.flush(acct)
        # both generations replay before retirement
        data = yield from wal.read_all(acct)
        assert [r.key for r in AofCodec.decode_stream(data)] == [b"old", b"new"]
        yield from wal.retire_previous(acct)
        data = yield from wal.read_all(acct)
        return data

    data = drive(env, proc())
    recs = list(AofCodec.decode_stream(data))
    assert [r.key for r in recs] == [b"new"]
    assert wal.size > 0
    # old generation pages were TRIMmed (white-box FTL assertion)
    assert dev.ftl.counters["deallocated_pages"] >= 2  # slimlint: ignore[SLIM006]


def test_wal_writes_carry_wal_pid(world):
    env, dev, ring, space, meta, acct = world
    wal = make_wal(env, ring, space, meta, acct)

    def proc():
        yield from wal.append(b"x" * 5000, acct)
        yield from wal.flush(acct)

    drive(env, proc())
    lba = space.wal.vpn_to_lba(0)
    # white-box: the test asserts which FTL stream the write landed in
    ppn = dev.ftl.mapped_ppn(lba)  # slimlint: ignore[SLIM006]
    seg = dev.geometry.segment_of_page(ppn)
    assert dev.ftl.segment_stream(seg) == wal.placement.wal_pid  # slimlint: ignore[SLIM006]


def snapshot_through_path(env, ring, space, meta, kind, items,
                          chunk_entries=16):
    sink = SnapshotPath(env, ring, space, meta, kind)
    writer = SnapshotWriterProcess(env, items, sink, kind=kind,
                                   chunk_entries=chunk_entries)
    p = env.process(writer.run())
    return env.run(until=p), sink


def test_snapshot_path_roundtrip(world):
    env, dev, ring, space, meta, acct = world
    items = [(b"key%d" % i, b"v" * 300) for i in range(100)]
    stats, sink = snapshot_through_path(env, ring, space, meta,
                                        SnapshotKind.ON_DEMAND, items)
    assert stats.ok
    assert space.slots.slot_of(SlotRole.ONDEMAND_SNAPSHOT) is not None
    source = SlimIOSnapshotSource(ring, space, SnapshotKind.ON_DEMAND)
    result = drive(env, recover_store(env, source, None,
                                      CpuAccount(env, "rec")))
    assert result.data == dict(items)


def test_snapshot_path_writes_carry_kind_pid(world):
    env, dev, ring, space, meta, acct = world
    items = [(b"k", b"v" * 100)]
    _, sink = snapshot_through_path(env, ring, space, meta,
                                    SnapshotKind.WAL_TRIGGERED, items)
    slot = space.slots.slot_of(SlotRole.WAL_SNAPSHOT)
    base, _ = space.slot_extent(slot)
    # white-box: the test asserts which FTL stream the write landed in
    ppn = dev.ftl.mapped_ppn(base)  # slimlint: ignore[SLIM006]
    seg = dev.geometry.segment_of_page(ppn)
    assert dev.ftl.segment_stream(seg) == sink.placement.wal_snapshot_pid  # slimlint: ignore[SLIM006]


def test_snapshot_promotion_retires_old_slot(world):
    env, dev, ring, space, meta, acct = world
    items1 = [(b"gen1", b"a" * 4000)]
    items2 = [(b"gen2", b"b" * 4000)]
    snapshot_through_path(env, ring, space, meta,
                          SnapshotKind.WAL_TRIGGERED, items1)
    slot1 = space.slots.slot_of(SlotRole.WAL_SNAPSHOT)
    snapshot_through_path(env, ring, space, meta,
                          SnapshotKind.WAL_TRIGGERED, items2)
    slot2 = space.slots.slot_of(SlotRole.WAL_SNAPSHOT)
    assert slot1 != slot2
    assert space.slots.roles[slot1] == SlotRole.RESERVE
    # latest snapshot is the one recovered
    source = SlimIOSnapshotSource(ring, space, SnapshotKind.WAL_TRIGGERED)
    result = drive(env, recover_store(env, source, None,
                                      CpuAccount(env, "rec")))
    assert result.data == dict(items2)


def test_snapshot_abort_preserves_previous(world):
    env, dev, ring, space, meta, acct = world
    items1 = [(b"k", b"good")]
    snapshot_through_path(env, ring, space, meta,
                          SnapshotKind.ON_DEMAND, items1)

    sink = SnapshotPath(env, ring, space, meta, SnapshotKind.ON_DEMAND)

    class Boom(Exception):
        pass

    def failing():
        yield from sink.write(b"partial" * 100, acct)
        raise Boom()

    def attempt():
        try:
            yield from failing()
        except Boom:
            sink.abort()

    drive(env, attempt())
    space.slots.check_invariants()
    source = SlimIOSnapshotSource(ring, space, SnapshotKind.ON_DEMAND)
    result = drive(env, recover_store(env, source, None,
                                      CpuAccount(env, "rec")))
    assert result.data == dict(items1)


def test_snapshot_slot_overflow_detected(world):
    env, dev, ring, space, meta, acct = world
    cap_bytes = space.layout.slot_lbas * dev.lba_size
    sink = SnapshotPath(env, ring, space, meta, SnapshotKind.ON_DEMAND)

    def proc():
        yield from sink.write(bytes(cap_bytes + 4096 * 9), acct)

    env.process(proc())
    with pytest.raises(OSError, match="slot overflow"):
        env.run()


def test_missing_snapshot_source_raises(world):
    env, dev, ring, space, meta, acct = world
    with pytest.raises(FileNotFoundError):
        SlimIOSnapshotSource(ring, space, SnapshotKind.ON_DEMAND)


def test_readahead_buffer_sequential_read(world):
    env, dev, ring, space, meta, acct = world
    page = dev.lba_size
    payload = bytes(range(256)) * (page // 256) * 8

    def seed():
        # raw seeding of device state for the read-side fixture
        yield from dev.submit(  # slimlint: ignore[SLIM001]
            WriteCmd(lba=100, nlb=8, data=payload)  # slimlint: ignore[SLIM007]
        )

    drive(env, seed())
    ra = ReadAheadBuffer(ring, base_lba=100, npages=8, window_pages=4,
                         batch_pages=2)

    def read():
        out = bytearray()
        for off in range(0, 8 * page, 3000):  # unaligned strides
            n = min(3000, 8 * page - off)
            piece = yield from ra.read(off, n, acct)
            out.extend(piece)
        return bytes(out)

    assert drive(env, read()) == payload


def test_readahead_bounds_checked(world):
    env, dev, ring, space, meta, acct = world
    ra = ReadAheadBuffer(ring, base_lba=0, npages=2)

    def proc():
        yield from ra.read(0, 3 * 4096, acct)

    env.process(proc())
    with pytest.raises(ValueError):
        env.run()
    with pytest.raises(ValueError):
        ReadAheadBuffer(ring, 0, 2, window_pages=0)
