"""Hypothesis state machine over the snapshot-slot lifecycle."""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
import hypothesis.strategies as st

from repro.core import LbaLayout, SlotRole
from repro.core.lba import SnapshotSlots
from repro.persist import SnapshotKind


class SlotMachine(RuleBasedStateMachine):
    """Random promote sequences must preserve all slot invariants."""

    def __init__(self):
        super().__init__()
        self.slots = SnapshotSlots(LbaLayout.partition(10_000))
        self.published: dict[SnapshotKind, int] = {}

    @rule(kind=st.sampled_from([SnapshotKind.WAL_TRIGGERED,
                                SnapshotKind.ON_DEMAND]),
          nbytes=st.integers(min_value=1, max_value=10**9))
    def promote(self, kind, nbytes):
        before_reserve = self.slots.reserve_slot
        old = self.slots.promote(kind, nbytes)
        role = SlotRole.for_kind(kind)
        # the freshly promoted slot is the previous reserve
        assert self.slots.slot_of(role) == before_reserve
        assert self.slots.lengths[before_reserve] == nbytes
        # the returned slot (if any) was this kind's previous home
        if kind in self.published:
            assert old == self.published[kind]
        else:
            assert old is None
        self.published[kind] = before_reserve

    @invariant()
    def exactly_one_reserve(self):
        assert self.slots.roles.count(SlotRole.RESERVE) == 1

    @invariant()
    def no_duplicate_roles(self):
        for role in (SlotRole.WAL_SNAPSHOT, SlotRole.ONDEMAND_SNAPSHOT):
            assert self.slots.roles.count(role) <= 1

    @invariant()
    def reserve_has_zero_length(self):
        assert self.slots.lengths[self.slots.reserve_slot] == 0

    @invariant()
    def internal_checker_agrees(self):
        self.slots.check_invariants()


TestSlotMachine = SlotMachine.TestCase
TestSlotMachine.settings = settings(max_examples=50, deadline=None,
                                    stateful_step_count=30)
