"""End-to-end system tests: build, run, snapshot, crash, recover."""

import pytest

from repro import (
    LoggingPolicy,
    SnapshotKind,
    SystemConfig,
    build_baseline,
    build_slimio,
)
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ClientOp

FAST = NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                  channel_transfer=0.5e-6)
SMALL = SystemConfig(
    geometry=FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=64,
                           pages_per_block=16),
    nand=FAST,
    ftl=FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                  gc_reserve_segments=2),
    wal_flush_interval=0.01,
    dirty_limit_bytes=128 * 4096,
    fs_extent_pages=16,
)


def drive(env, gen):
    p = env.process(gen)
    return env.run(until=p)


def fill(system, n, value_size=200, prefix=b"key"):
    def proc():
        for i in range(n):
            yield from system.server.execute(
                ClientOp("SET", prefix + b"%d" % i, bytes([i % 256]) * value_size)
            )

    drive(system.env, proc())


@pytest.mark.parametrize("builder", [build_baseline, build_slimio])
def test_build_run_snapshot_recover(builder):
    system = builder(config=SMALL)
    fill(system, 50)
    stats = system.env.run(until=system.server.start_snapshot(
        SnapshotKind.ON_DEMAND))
    assert stats.ok
    result = drive(system.env, system.recover(SnapshotKind.ON_DEMAND))
    assert result.data == system.server.store.as_dict()
    system.stop()


@pytest.mark.parametrize("builder", [build_baseline, build_slimio])
def test_recovery_includes_wal_written_after_snapshot(builder):
    system = builder(config=SMALL)
    fill(system, 20)
    system.env.run(until=system.server.start_snapshot(SnapshotKind.WAL_TRIGGERED))
    fill(system, 10, prefix=b"late")

    def settle():  # let the periodical flusher drain
        yield system.env.timeout(0.1)

    drive(system.env, settle())
    result = drive(system.env, system.recover(SnapshotKind.WAL_TRIGGERED))
    assert result.data == system.server.store.as_dict()
    assert result.wal_records_applied >= 10
    system.stop()


@pytest.mark.parametrize("builder", [build_baseline, build_slimio])
def test_always_log_survives_crash(builder):
    import dataclasses

    cfg = dataclasses.replace(SMALL, policy=LoggingPolicy.ALWAYS)
    system = builder(config=cfg)
    fill(system, 15)
    expected = system.server.store.as_dict()
    system.crash()
    result = drive(system.env, system.recover())
    assert result.data == expected
    system.stop()


@pytest.mark.parametrize("builder", [build_baseline, build_slimio])
def test_periodical_log_crash_loses_only_unflushed_tail(builder):
    system = builder(config=SMALL)
    fill(system, 15)
    system.crash()  # before any flush deadline
    result = drive(system.env, system.recover())
    # at-most semantics: recovered state is a prefix of what was acked
    full = system.server.store.as_dict()
    for k, v in result.data.items():
        assert full[k] == v
    system.stop()


def test_slimio_recovery_on_blank_device():
    system = build_slimio(config=SMALL)
    result = drive(system.env, system.recover())
    assert result.data == {}
    system.stop()


def test_baseline_recovery_on_blank_device():
    system = build_baseline(config=SMALL)
    result = drive(system.env, system.recover())
    assert result.data == {}
    system.stop()


def test_slimio_crash_mid_snapshot_keeps_previous():
    system = build_slimio(config=SMALL)
    fill(system, 30)
    v1 = system.server.store.as_dict()
    system.env.run(until=system.server.start_snapshot(SnapshotKind.ON_DEMAND))
    # second snapshot: crash while the child is writing
    fill(system, 5, prefix=b"extra")
    system.server.start_snapshot(SnapshotKind.ON_DEMAND)

    def crash_mid_flight():
        yield system.env.timeout(1e-4)  # somewhere inside the child's run

    drive(system.env, crash_mid_flight())
    # power loss now: rebuild from a cold engine sharing the same device
    result = drive(system.env, system.recover(SnapshotKind.ON_DEMAND))
    # the recovered snapshot is the FIRST one (second never promoted)
    for k, v in v1.items():
        assert result.data.get(k) == v
    system.stop()


def test_wal_snapshot_trigger_end_to_end_slimio():
    import dataclasses

    from repro.imdb import ServerConfig

    cfg = dataclasses.replace(
        SMALL,
        policy=LoggingPolicy.ALWAYS,
        server=ServerConfig(wal_snapshot_trigger_bytes=30_000,
                            snapshot_chunk_entries=16),
    )
    system = build_slimio(config=cfg)
    fill(system, 80, value_size=500)

    def settle():
        while system.server.snapshot_in_progress:
            yield system.env.timeout(1e-3)

    drive(system.env, settle())
    kinds = [s.kind for s in system.metrics.snapshots]
    assert SnapshotKind.WAL_TRIGGERED in kinds
    result = drive(system.env, system.recover())
    assert result.data == system.server.store.as_dict()
    system.stop()


def test_slimio_waf_stays_one_under_churn():
    import dataclasses

    from repro.imdb import ServerConfig

    cfg = dataclasses.replace(
        SMALL,
        geometry=FlashGeometry(channels=1, dies_per_channel=2,
                               blocks_per_die=16, pages_per_block=16),
        policy=LoggingPolicy.ALWAYS,
        server=ServerConfig(wal_snapshot_trigger_bytes=40_000,
                            snapshot_chunk_entries=16),
    )
    system = build_slimio(config=cfg)
    # enough WAL churn to wrap the device and trigger GC
    for round_ in range(12):
        fill(system, 40, value_size=2000)

        def settle():
            while system.server.snapshot_in_progress:
                yield system.env.timeout(1e-3)

        drive(system.env, settle())
    assert system.device.ftl.stats.segments_erased > 0, "GC must have run"
    assert system.waf == pytest.approx(1.0)
    system.stop()


def test_config_validation():
    with pytest.raises(ValueError):
        SystemConfig(fs="zfs")
    with pytest.raises(ValueError):
        SystemConfig(scheduler="bfq")
    # all three supported schedulers construct
    for sched in ("none", "sync-priority", "mq-deadline"):
        SystemConfig(scheduler=sched)


def test_builder_overrides():
    system = build_slimio(config=SMALL, fdp=False, sqpoll=False)
    assert system.config.fdp is False
    assert system.wal_ring.sqpoll is False
    system.stop()
