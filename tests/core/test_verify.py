"""LBA-space verifier tests, including crash-point property tests."""

import pytest

from repro import LoggingPolicy, SnapshotKind, SystemConfig, build_slimio
from repro.core.verify import verify_lba_space
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ClientOp, ServerConfig

FAST = NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                  channel_transfer=0.5e-6)
SMALL = SystemConfig(
    geometry=FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=64,
                           pages_per_block=16),
    nand=FAST,
    ftl=FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                  gc_reserve_segments=2),
    policy=LoggingPolicy.ALWAYS,
    server=ServerConfig(wal_snapshot_trigger_bytes=40_000,
                        snapshot_chunk_entries=16),
    wal_flush_interval=0.01,
    fs_extent_pages=16,
)


def build_and_fill(n=30, value=300):
    system = build_slimio(config=SMALL)

    def filler():
        for i in range(n):
            yield from system.server.execute(
                ClientOp("SET", b"key%d" % i, bytes([i % 251]) * value))

    system.env.run(until=system.env.process(filler()))
    return system


def verify(system):
    return verify_lba_space(
        system.device, system.space.layout,
        snapshot_fraction=system.config.snapshot_fraction,
    )


def test_blank_device_verifies():
    system = build_slimio(config=SMALL)
    report = verify(system)
    assert report.blank_device
    assert report.ok
    system.stop()


def test_healthy_system_verifies():
    system = build_and_fill()
    system.env.run(until=system.server.start_snapshot(SnapshotKind.ON_DEMAND))
    report = verify(system)
    assert report.ok, report.issues
    assert report.metadata is not None
    assert report.snapshot_entries.get("ONDEMAND_SNAPSHOT", 0) == 30
    assert report.wal_records >= 30
    system.stop()


def test_verify_after_many_rotations():
    system = build_and_fill(n=120, value=1000)

    def settle():
        while system.server.snapshot_in_progress:
            yield system.env.timeout(1e-3)

    system.env.run(until=system.env.process(settle()))
    report = verify(system)
    assert report.ok, report.issues
    assert "WAL_SNAPSHOT" in report.snapshot_entries
    system.stop()


def test_verify_detects_corrupt_snapshot_slot():
    system = build_and_fill()
    system.env.run(until=system.server.start_snapshot(SnapshotKind.ON_DEMAND))
    from repro.core.lba import SlotRole

    slot = system.space.slots.slot_of(SlotRole.ONDEMAND_SNAPSHOT)
    base, _ = system.space.slot_extent(slot)
    # corrupt a byte INSIDE the published stream (it may be tiny)
    length = system.space.slots.lengths[slot]
    # fault injection: flip a byte directly in the stored page
    page = bytearray(system.device.peek(base))  # slimlint: ignore[SLIM001]
    page[max(length // 2, 16)] ^= 0xFF
    system.device._data[base] = bytes(page)
    report = verify(system)
    assert not report.ok
    assert any("corrupt" in i for i in report.issues)
    system.stop()


def test_verify_detects_destroyed_metadata():
    system = build_and_fill()
    system.device._data[0] = bytes(4096)
    system.device._data[1] = bytes(4096)
    report = verify(system)
    assert not report.ok
    assert any("metadata" in i for i in report.issues)
    system.stop()


@pytest.mark.parametrize("crash_fraction", [0.1, 0.35, 0.6, 0.85])
def test_crash_at_arbitrary_point_space_still_verifies(crash_fraction):
    """Kill the system mid-flight; the on-flash state must verify and
    recover to a consistent prefix."""
    system = build_slimio(config=SMALL)
    ops = 100

    def driver():
        for i in range(ops):
            yield from system.server.execute(
                ClientOp("SET", b"k%d" % (i % 25), bytes([i % 251]) * 700))
            if i == ops // 2:
                system.server.start_snapshot(SnapshotKind.ON_DEMAND)

    proc = system.env.process(driver())
    # run a fraction of the full driver wall-time, then power off
    system.env.run(until=0.5)  # ensure end time exists even if done
    try:
        system.env.run(until=proc)
    except Exception:
        pass
    end = system.env.now
    # fresh run, crash partway
    system2 = build_slimio(config=SMALL)

    def driver2():
        for i in range(ops):
            yield from system2.server.execute(
                ClientOp("SET", b"k%d" % (i % 25), bytes([i % 251]) * 700))
            if i == ops // 2:
                system2.server.start_snapshot(SnapshotKind.ON_DEMAND)

    system2.env.process(driver2())
    system2.env.run(until=max(end * crash_fraction, 1e-6))
    system2.crash()
    report = verify(system2)
    assert report.ok, report.issues
    # and recovery completes, yielding a consistent prefix
    result = system2.env.run(
        until=system2.env.process(system2.recover(SnapshotKind.ON_DEMAND)))
    live = system2.server.store.as_dict()
    for k, v in result.data.items():
        assert k in live  # never invents keys
    system.stop()
    system2.stop()
