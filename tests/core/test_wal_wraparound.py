"""Circular WAL region: generations that physically wrap the region."""

import pytest

from repro.core import LbaSpaceManager, MetadataStore
from repro.core.paths import WalPath
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.kernel import CpuAccount, KernelCosts, PassthruQueuePair
from repro.nvme import NvmeDevice
from repro.persist import AofCodec, AofRecord, OP_SET
from repro.sim import Environment

FAST = NandTiming(page_read=1e-6, page_program=2e-6, block_erase=10e-6,
                  channel_transfer=0.0)
CFG = FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                gc_reserve_segments=2)


def world():
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=64,
                      pages_per_block=8)
    dev = NvmeDevice(env, g, FAST, CFG, fdp=True)
    ring = PassthruQueuePair(env, dev, KernelCosts())
    # large snapshot fraction -> deliberately small WAL region
    space = LbaSpaceManager(dev.num_lbas, snapshot_fraction=0.8)
    meta = MetadataStore(ring, space.layout)
    acct = CpuAccount(env, "main")
    wal = WalPath(env, ring, space, meta, acct)
    return env, dev, space, wal, acct


def drive(env, gen):
    return env.run(until=env.process(gen))


def generation(env, wal, acct, tag, nbytes_per_rec=3000, nrecs=20):
    recs = [AofRecord(op=OP_SET, key=b"%s-%04d" % (tag, i),
                      value=bytes([i % 251]) * nbytes_per_rec)
            for i in range(nrecs)]

    def proc():
        for r in recs:
            yield from wal.append(AofCodec.encode(r), acct)
        yield from wal.flush(acct)

    drive(env, proc())
    return recs


def test_many_generations_wrap_the_region():
    env, dev, space, wal, acct = world()
    region = space.wal.wal_pages
    gens = 0
    # keep rotating until the head has physically wrapped twice
    while space.wal.head < 2 * region + 2:
        recs = generation(env, wal, acct, b"g%02d" % gens)

        def rotate():
            yield from wal.begin_generation(acct)
            yield from wal.retire_previous(acct)

        drive(env, rotate())
        gens += 1
        assert gens < 60, "region never wrapped — geometry too large"
    assert gens >= 3

    # one more live generation across the wrap point, then read back
    recs = generation(env, wal, acct, b"live")

    def read():
        data = yield from wal.read_all(acct)
        return data

    data = drive(env, read())
    decoded = list(AofCodec.decode_stream(data))
    assert [r.key for r in decoded] == [r.key for r in recs]
    assert [r.value for r in decoded] == [r.value for r in recs]


def test_wrapped_generation_with_unretired_previous():
    """Previous generation straddling the wrap must replay first."""
    env, dev, space, wal, acct = world()
    region = space.wal.wal_pages
    # advance near the region end
    while space.wal.head < region - 4:
        generation(env, wal, acct, b"fill", nbytes_per_rec=4000, nrecs=8)

        def rotate():
            yield from wal.begin_generation(acct)
            yield from wal.retire_previous(acct)

        drive(env, rotate())
    old = generation(env, wal, acct, b"old", nbytes_per_rec=4000, nrecs=4)

    def begin_only():
        yield from wal.begin_generation(acct)  # old stays live

    drive(env, begin_only())
    new = generation(env, wal, acct, b"new", nbytes_per_rec=4000, nrecs=4)

    def read():
        data = yield from wal.read_all(acct)
        return data

    decoded = list(AofCodec.decode_stream(drive(env, read())))
    assert [r.key for r in decoded] == [r.key for r in old + new]


def test_region_overflow_raises_cleanly():
    env, dev, space, wal, acct = world()
    region_bytes = space.wal.wal_pages * dev.lba_size

    def proc():
        yield from wal.append(b"x" * (region_bytes + 8192), acct)
        yield from wal.flush(acct)

    env.process(proc())
    with pytest.raises(OSError, match="WAL region full"):
        env.run()
