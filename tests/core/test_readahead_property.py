"""Read-ahead buffer correctness: any access pattern returns the same
bytes a direct device read would."""

from hypothesis import given, settings, strategies as st

from repro.core import ReadAheadBuffer
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.kernel import CpuAccount, KernelCosts, PassthruQueuePair
from repro.nvme import NvmeDevice, WriteCmd
from repro.sim import Environment

FAST = NandTiming(page_read=1e-6, page_program=2e-6, block_erase=10e-6,
                  channel_transfer=0.0)
CFG = FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                gc_reserve_segments=2)

NPAGES = 12


def seeded_world():
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=24,
                      pages_per_block=16)
    dev = NvmeDevice(env, g, FAST, CFG)
    page = dev.lba_size
    payload = bytes(
        (i * 37 + j) % 256 for i in range(NPAGES) for j in range(page)
    )

    def seed():
        # raw seeding of device state for the read-side fixture
        yield from dev.submit(  # slimlint: ignore[SLIM001]
            WriteCmd(lba=5, nlb=NPAGES, data=payload)  # slimlint: ignore[SLIM007]
        )

    env.run(until=env.process(seed()))
    ring = PassthruQueuePair(env, dev, KernelCosts())
    return env, dev, ring, payload


@st.composite
def read_plan(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    total = NPAGES * 4096
    reads = []
    for _ in range(n):
        off = draw(st.integers(min_value=0, max_value=total - 1))
        length = draw(st.integers(min_value=0, max_value=total - off))
        reads.append((off, length))
    return reads


@given(read_plan(),
       st.integers(min_value=1, max_value=16),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_reads_match_ground_truth(reads, window, batch):
    env, dev, ring, payload = seeded_world()
    ra = ReadAheadBuffer(ring, base_lba=5, npages=NPAGES,
                         window_pages=window, batch_pages=batch)
    acct = CpuAccount(env, "reader")

    def driver():
        out = []
        for off, length in reads:
            data = yield from ra.read(off, length, acct)
            out.append(data)
        return out

    results = env.run(until=env.process(driver()))
    for (off, length), data in zip(reads, results):
        assert data == payload[off:off + length]


@given(st.integers(min_value=1, max_value=64))
@settings(max_examples=10, deadline=None)
def test_sequential_scan_always_exact(window):
    env, dev, ring, payload = seeded_world()
    ra = ReadAheadBuffer(ring, base_lba=5, npages=NPAGES,
                         window_pages=window, batch_pages=4)
    acct = CpuAccount(env, "reader")

    def driver():
        out = bytearray()
        pos = 0
        total = len(payload)
        while pos < total:
            n = min(3001, total - pos)  # deliberately unaligned stride
            data = yield from ra.read(pos, n, acct)
            out.extend(data)
            pos += n
        return bytes(out)

    assert env.run(until=env.process(driver())) == payload


def test_concurrent_prefetchers_never_duplicate_a_batch(monkeypatch):
    """Regression (slimflow SLIM010): ``_prefetch`` read the cursor,
    parked in ``ring.submit``, and only then advanced it — so a second
    process driving the same buffer re-submitted the same batch while
    the first was parked. The cursor must be reserved before the yield.
    """
    env, dev, ring, payload = seeded_world()
    ra = ReadAheadBuffer(ring, base_lba=5, npages=NPAGES,
                         window_pages=NPAGES, batch_pages=2)
    submitted = []
    orig = ring.submit

    def counting_submit(cmd, account):
        submitted.append((cmd.lba, cmd.nlb))
        return orig(cmd, account)

    monkeypatch.setattr(ring, "submit", counting_submit)
    a1, a2 = CpuAccount(env, "r1"), CpuAccount(env, "r2")
    p1 = env.process(ra._prefetch(a1))
    p2 = env.process(ra._prefetch(a2))
    env.run(until=env.all_of([p1, p2]))

    # every page prefetched exactly once, between the two of them
    starts = [lba for lba, _ in submitted]
    assert len(starts) == len(set(starts)), f"duplicate batches: {submitted}"
    covered = sorted(lba + i for lba, nlb in submitted for i in range(nlb))
    assert covered == list(range(5, 5 + NPAGES))

    # and the buffer still serves correct bytes afterwards
    def check():
        data = yield from ra.read(0, len(payload), a1)
        return data

    assert env.run(until=env.process(check())) == payload
