"""Replica bootstrap tests."""

import pytest

from repro import SystemConfig, build_baseline, build_slimio
from repro.core.replicate import ReplicationLink, full_sync
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ClientOp
from repro.sim import Environment

CFG = SystemConfig(
    geometry=FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=64,
                           pages_per_block=16),
    nand=NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                    channel_transfer=0.0),
    ftl=FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                  gc_reserve_segments=2),
    wal_flush_interval=0.01,
    fs_extent_pages=16,
)


def pair(master_builder=build_slimio, replica_builder=build_slimio):
    env = Environment()
    master = master_builder(env=env, config=CFG)
    replica = replica_builder(env=env, config=CFG)
    return env, master, replica


def fill(env, system, n, tag=b""):
    from repro.workloads import make_value

    def filler():
        for i in range(n):
            key = tag + b"k%d" % i
            yield from system.server.execute(
                ClientOp("SET", key, make_value(key, 2048)))

    env.run(until=env.process(filler()))


def test_full_sync_replicates_dataset():
    env, master, replica = pair()
    fill(env, master, 40)
    report = env.run(until=env.process(full_sync(master, replica)))
    assert report.snapshot_entries == 40
    assert report.snapshot_bytes > 0
    assert report.duration > report.transfer_time > 0
    assert replica.server.store.as_dict() == master.server.store.as_dict()
    master.stop(); replica.stop()


def test_full_sync_forwards_concurrent_writes():
    env, master, replica = pair()
    fill(env, master, 30)

    done = {}
    slowish = ReplicationLink(bandwidth=16 * 1024 * 1024)

    def sync():
        rep = yield from full_sync(master, replica, slowish)
        done["report"] = rep

    def concurrent_writer():
        for i in range(10):
            yield from master.server.execute(
                ClientOp("SET", b"live%d" % i, b"fresh" * 20))
            yield env.timeout(2e-4)

    p = env.process(sync())
    env.process(concurrent_writer())
    env.run(until=p)
    env.run(until=env.timeout(1e-3))
    rep = done["report"]
    assert rep.records_forwarded >= 1
    for i in range(10):
        assert replica.server.store.get(b"live%d" % i) == b"fresh" * 20
    master.stop(); replica.stop()


def test_concurrent_overwrites_and_deletes_byte_for_byte():
    """A writer mutating the dataset mid-sync (overwrites, fresh keys,
    deletes) must leave the replica byte-for-byte equal to the master
    once the backlog drains."""
    env, master, replica = pair()
    fill(env, master, 40)

    done = {}
    slow = ReplicationLink(bandwidth=4 * 1024 * 1024)

    def sync():
        done["report"] = yield from full_sync(master, replica, slow)
        done["t_sync"] = env.now

    def churn():
        for i in range(12):
            yield from master.server.execute(
                ClientOp("SET", b"k%d" % i, b"overwritten" * 10))
            yield from master.server.execute(
                ClientOp("SET", b"new%d" % i, b"fresh" * 8))
            yield from master.server.execute(ClientOp("DEL", b"k%d" % (i + 20)))
            yield env.timeout(1e-4)
        done["t_churn"] = env.now

    p = env.process(sync())
    env.process(churn())
    env.run(until=p)
    assert done["t_churn"] <= done["t_sync"], \
        "test premise: churn must finish while the sync tap is live"
    assert done["report"].records_forwarded >= 1
    assert replica.server.store.as_dict() == master.server.store.as_dict()
    master.stop(); replica.stop()


def test_key_filter_restricts_snapshot_entries():
    env, master, replica = pair()
    fill(env, master, 20, tag=b"a")
    fill(env, master, 20, tag=b"b")

    report = env.run(until=env.process(full_sync(
        master, replica, key_filter=lambda k: k.startswith(b"a"),
    )))
    assert report.snapshot_entries == 20
    replicated = replica.server.store.as_dict()
    assert len(replicated) == 20
    assert all(k.startswith(b"a") for k in replicated)
    # the master keeps everything — a filtered sync only copies
    assert len(master.server.store.as_dict()) == 40
    master.stop(); replica.stop()


def test_key_filter_restricts_forwarding():
    env, master, replica = pair()
    fill(env, master, 30, tag=b"a")

    slow = ReplicationLink(bandwidth=4 * 1024 * 1024)

    def sync():
        yield from full_sync(master, replica, slow,
                             key_filter=lambda k: k.startswith(b"a"))

    def churn():
        for i in range(8):
            yield from master.server.execute(
                ClientOp("SET", b"a-live%d" % i, b"in" * 30))
            yield from master.server.execute(
                ClientOp("SET", b"z-live%d" % i, b"out" * 30))
            yield env.timeout(1e-4)

    p = env.process(sync())
    env.process(churn())
    env.run(until=p)
    for i in range(8):
        assert replica.server.store.get(b"a-live%d" % i) == b"in" * 30
        assert replica.server.store.get(b"z-live%d" % i) is None
    master.stop(); replica.stop()


def test_cross_design_sync_baseline_to_slimio():
    env, master, replica = pair(build_baseline, build_slimio)
    fill(env, master, 25)
    env.run(until=env.process(full_sync(master, replica)))
    assert replica.server.store.as_dict() == master.server.store.as_dict()
    master.stop(); replica.stop()


def test_slow_link_dominates_duration():
    env, master, replica = pair()
    fill(env, master, 40)
    slow = ReplicationLink(bandwidth=2 * 1024 * 1024)  # 2 MB/s
    report = env.run(until=env.process(full_sync(master, replica, slow)))
    assert report.transfer_time > 0.5 * report.duration
    master.stop(); replica.stop()


def test_link_validation():
    with pytest.raises(ValueError):
        ReplicationLink(bandwidth=0)
    with pytest.raises(ValueError):
        ReplicationLink(rtt=-1)


def test_environments_must_match():
    _, master, _ = pair()
    other = build_slimio(config=CFG)
    gen = full_sync(master, other)
    with pytest.raises(ValueError):
        next(gen)
    master.stop(); other.stop()


def test_sync_fails_cleanly_when_snapshot_busy():
    env, master, replica = pair()
    fill(env, master, 60, tag=b"x")
    from repro.persist import SnapshotKind

    master.server.start_snapshot(SnapshotKind.ON_DEMAND)  # occupy

    def attempt():
        with pytest.raises(RuntimeError, match="in progress"):
            yield from full_sync(master, replica)

    env.run(until=env.process(attempt()))
    master.stop(); replica.stop()
