"""LBA layout, slot state machine, circular WAL region."""

import pytest

from repro.core import LbaLayout, LbaSpaceManager, SlotRole
from repro.core.lba import SnapshotSlots, WalRegion
from repro.persist import SnapshotKind


def test_layout_partition_covers_device():
    lay = LbaLayout.partition(10_000)
    assert lay.metadata_base == 0
    assert lay.snapshot_base == lay.metadata_lbas
    assert lay.wal_base == lay.metadata_lbas + 3 * lay.slot_lbas
    assert lay.wal_lbas == 10_000 - lay.wal_base
    assert lay.wal_lbas > 0


def test_layout_slot_bases_disjoint():
    lay = LbaLayout.partition(10_000)
    bases = [lay.slot_base(i) for i in range(3)]
    assert bases == sorted(bases)
    assert bases[1] - bases[0] == lay.slot_lbas
    with pytest.raises(ValueError):
        lay.slot_base(3)


def test_layout_validation():
    with pytest.raises(ValueError):
        LbaLayout(total_lbas=4)
    with pytest.raises(ValueError):
        LbaLayout.partition(1000, snapshot_fraction=1.5)


def test_slots_initial_state():
    s = SnapshotSlots(LbaLayout.partition(10_000))
    assert s.roles.count(SlotRole.RESERVE) == 1
    assert s.reserve_slot == 0
    s.check_invariants()


def test_slot_promotion_cycle():
    s = SnapshotSlots(LbaLayout.partition(10_000))
    # first WAL-snapshot goes to slot 0 (the reserve)
    old = s.promote(SnapshotKind.WAL_TRIGGERED, 1000)
    assert old is None
    assert s.slot_of(SlotRole.WAL_SNAPSHOT) == 0
    assert s.lengths[0] == 1000
    s.check_invariants()
    # on-demand uses the new reserve
    r1 = s.reserve_slot
    old = s.promote(SnapshotKind.ON_DEMAND, 2000)
    assert old is None
    assert s.slot_of(SlotRole.ONDEMAND_SNAPSHOT) == r1
    s.check_invariants()
    # second WAL-snapshot: previous WAL-snapshot slot becomes reserve
    r2 = s.reserve_slot
    old = s.promote(SnapshotKind.WAL_TRIGGERED, 3000)
    assert old == 0
    assert s.slot_of(SlotRole.WAL_SNAPSHOT) == r2
    assert s.roles[0] == SlotRole.RESERVE
    assert s.lengths[0] == 0
    s.check_invariants()


def test_slot_promotion_many_cycles_invariants():
    s = SnapshotSlots(LbaLayout.partition(10_000))
    kinds = [SnapshotKind.WAL_TRIGGERED, SnapshotKind.ON_DEMAND] * 10
    for i, kind in enumerate(kinds):
        s.promote(kind, 100 * (i + 1))
        s.check_invariants()
    assert s.slot_of(SlotRole.WAL_SNAPSHOT) is not None
    assert s.slot_of(SlotRole.ONDEMAND_SNAPSHOT) is not None


def test_wal_region_sequential_alloc():
    w = WalRegion(LbaLayout.partition(10_000))
    v0 = w.alloc(10)
    v1 = w.alloc(5)
    assert (v0, v1) == (0, 10)
    assert w.head == 15


def test_wal_region_wraps_physically():
    lay = LbaLayout.partition(1000)
    w = WalRegion(lay)
    n = w.wal_pages
    w.alloc(n - 2)
    w.start_new_generation()
    w.retire_previous()
    vpn = w.alloc(4)  # crosses the region end
    runs = w.contiguous_run(vpn, 4)
    assert len(runs) == 2
    assert runs[0] == (lay.wal_base + n - 2, 2)
    assert runs[1] == (lay.wal_base, 2)


def test_wal_region_full_raises():
    w = WalRegion(LbaLayout.partition(1000))
    with pytest.raises(OSError):
        w.alloc(w.wal_pages + 1)


def test_wal_region_rotation_protects_previous_gen():
    w = WalRegion(LbaLayout.partition(1000))
    n = w.wal_pages
    w.alloc(n // 2)
    retired = w.start_new_generation()
    assert retired == (0, n // 2)
    # previous gen still live: can't consume the whole region again
    with pytest.raises(OSError):
        w.alloc(n - n // 2 + 1)
    w.retire_previous()
    w.alloc(n - n // 2)  # now it fits


def test_manager_slot_extent():
    m = LbaSpaceManager(10_000)
    base, n = m.slot_extent(1)
    assert base == m.layout.slot_base(1)
    assert n == m.layout.slot_lbas
