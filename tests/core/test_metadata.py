"""Metadata codec + dual-copy store tests."""

import pytest

from repro.core import LbaLayout, Metadata, MetadataCodec, MetadataStore
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.kernel import CpuAccount, KernelCosts, PassthruQueuePair
from repro.nvme import NvmeDevice
from repro.sim import Environment

FAST = NandTiming(page_read=1e-6, page_program=2e-6, block_erase=10e-6,
                  channel_transfer=0.0)
CFG = FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                gc_reserve_segments=2)


@pytest.fixture
def world():
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=24,
                      pages_per_block=16)
    dev = NvmeDevice(env, g, FAST, CFG, fdp=True)
    ring = PassthruQueuePair(env, dev, KernelCosts())
    layout = LbaLayout.partition(dev.num_lbas)
    store = MetadataStore(ring, layout)
    acct = CpuAccount(env, "meta")
    return env, dev, store, acct


def drive(env, gen):
    p = env.process(gen)
    return env.run(until=p)


def test_codec_roundtrip():
    m = Metadata(seqno=7, wal_gen_start=100, wal_head=250,
                 slot_roles=[1, 0, 3], slot_lengths=[12345, 0, 0])
    page = MetadataCodec.encode(m, 4096)
    assert len(page) == 4096
    out = MetadataCodec.decode(page)
    assert out == m


def test_codec_blank_page_is_none():
    assert MetadataCodec.decode(bytes(4096)) is None


def test_codec_corrupt_crc_is_none():
    m = Metadata(seqno=1)
    page = bytearray(MetadataCodec.encode(m, 4096))
    page[12] ^= 0xFF
    assert MetadataCodec.decode(bytes(page)) is None


def test_codec_short_page_is_none():
    assert MetadataCodec.decode(b"tiny") is None


def test_metadata_slot_count_enforced():
    with pytest.raises(ValueError):
        Metadata(slot_roles=[0, 0], slot_lengths=[0, 0])


def test_store_write_read_roundtrip(world):
    env, dev, store, acct = world
    m = Metadata(wal_gen_start=5, wal_head=42)

    def proc():
        yield from store.write(m, acct)
        out = yield from store.read(acct)
        return out

    out = drive(env, proc())
    assert out.wal_head == 42
    assert out.seqno == 1


def test_store_alternates_copies_and_keeps_freshest(world):
    env, dev, store, acct = world

    def proc():
        yield from store.write(Metadata(wal_head=1), acct)
        yield from store.write(Metadata(wal_head=2), acct)
        yield from store.write(Metadata(wal_head=3), acct)
        out = yield from store.read(acct)
        return out

    out = drive(env, proc())
    assert out.wal_head == 3
    assert out.seqno == 3
    # both physical pages hold valid (different-seqno) copies — the
    # white-box peek is the point of the test
    a = MetadataCodec.decode(dev.peek(0))  # slimlint: ignore[SLIM001]
    b = MetadataCodec.decode(dev.peek(1))  # slimlint: ignore[SLIM001]
    assert {a.seqno, b.seqno} == {2, 3}


def test_store_survives_torn_latest_copy(world):
    env, dev, store, acct = world

    def proc():
        yield from store.write(Metadata(wal_head=10), acct)
        yield from store.write(Metadata(wal_head=20), acct)

    drive(env, proc())
    # corrupt the freshest copy in place (torn write)
    newest_lba = 0 if MetadataCodec.decode(dev.peek(0)).seqno == 2 else 1  # slimlint: ignore[SLIM001]
    dev._data[newest_lba] = bytes(4096)

    def read():
        out = yield from store.read(acct)
        return out

    out = drive(env, read())
    assert out.wal_head == 10  # previous consistent state


def test_store_blank_device_reads_none(world):
    env, dev, store, acct = world

    def read():
        out = yield from store.read(acct)
        return out

    assert drive(env, read()) is None


def test_store_seqno_continues_after_recovery(world):
    env, dev, store, acct = world

    def proc():
        yield from store.write(Metadata(wal_head=1), acct)

    drive(env, proc())
    # a fresh store (post-restart) must not reuse seqnos
    store2 = MetadataStore(store.ring, store.layout)

    def proc2():
        yield from store2.read(acct)
        yield from store2.write(Metadata(wal_head=2), acct)
        out = yield from store2.read(acct)
        return out

    out = drive(env, proc2())
    assert out.seqno == 2
    assert out.wal_head == 2


def test_store_requires_two_pages():
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=24,
                      pages_per_block=16)
    dev = NvmeDevice(env, g, FAST, CFG)
    ring = PassthruQueuePair(env, dev, KernelCosts())
    lay = LbaLayout(total_lbas=dev.num_lbas, metadata_lbas=1, slot_lbas=10)
    with pytest.raises(ValueError):
        MetadataStore(ring, lay)
