"""Property-based crash tests: power loss at hypothesis-chosen instants.

The strongest claim the SlimIO design makes is §4.2's: no matter when
power is lost, recovery finds a consistent state — the newest durable
snapshot plus a prefix of the WAL. These tests cut power at arbitrary
fractions of a run and verify (a) the LBA space passes the offline
checker, (b) recovery reproduces exactly the durable prefix semantics.
"""

from hypothesis import given, settings, strategies as st

from repro import LoggingPolicy, SnapshotKind, SystemConfig, build_slimio
from repro.core.verify import verify_lba_space
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ClientOp, ServerConfig

FAST = NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                  channel_transfer=0.5e-6)
CFG = SystemConfig(
    geometry=FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=64,
                           pages_per_block=16),
    nand=FAST,
    ftl=FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                  gc_reserve_segments=2),
    policy=LoggingPolicy.ALWAYS,
    server=ServerConfig(wal_snapshot_trigger_bytes=25_000,
                        snapshot_chunk_entries=8),
    wal_flush_interval=0.005,
    fs_extent_pages=16,
)

N_OPS = 60


def run_until_crash(crash_time: float):
    system = build_slimio(config=CFG)
    acked: list[tuple[bytes, bytes]] = []

    def driver():
        for i in range(N_OPS):
            key = b"k%d" % (i % 15)
            val = bytes([i % 251]) * 400
            yield from system.server.execute(ClientOp("SET", key, val))
            acked.append((key, val))
            if i == N_OPS // 3:
                system.server.start_snapshot(SnapshotKind.ON_DEMAND)

    system.env.process(driver())
    system.env.run(until=max(crash_time, 1e-9))
    system.crash()
    return system, acked


@given(st.floats(min_value=0.00002, max_value=0.08))
@settings(max_examples=20, deadline=None)
def test_power_loss_leaves_verifiable_space(crash_time):
    system, _ = run_until_crash(crash_time)
    report = verify_lba_space(
        system.device, system.space.layout,
        snapshot_fraction=system.config.snapshot_fraction,
    )
    assert report.ok, (crash_time, report.issues)
    system.stop()


@given(st.floats(min_value=0.00002, max_value=0.08))
@settings(max_examples=15, deadline=None)
def test_recovery_is_exact_acked_prefix(crash_time):
    """Always-Log: recovery must equal the state implied by a prefix of
    the ACKED operations (durability can exceed acks via staged batch
    flushes, but can never reorder or invent)."""
    system, acked = run_until_crash(crash_time)
    result = system.env.run(until=system.env.process(
        system.recover(SnapshotKind.WAL_TRIGGERED)))
    system.stop()

    # build every prefix state and check the recovered dict matches one
    state: dict[bytes, bytes] = {}
    if result.data == state:
        return
    for key, val in acked:
        state[key] = val
        if result.data == state:
            return
    raise AssertionError(
        f"recovered state is not any acked prefix (crash at {crash_time})"
    )


@given(st.integers(min_value=1, max_value=40))
@settings(max_examples=10, deadline=None)
def test_double_crash_recovery_idempotent(n_ops):
    """Recover, crash again immediately, recover again: same state."""
    system = build_slimio(config=CFG)

    def driver():
        for i in range(n_ops):
            yield from system.server.execute(
                ClientOp("SET", b"k%d" % (i % 7), bytes([i % 251]) * 300))

    system.env.run(until=system.env.process(driver()))
    system.crash()
    r1 = system.env.run(until=system.env.process(system.recover()))
    system.crash()
    r2 = system.env.run(until=system.env.process(system.recover()))
    system.stop()
    assert r1.data == r2.data
