"""Compression model and codec tests."""

import pytest

from repro.persist import CompressionModel, Compressor


def test_roundtrip():
    c = Compressor()
    raw = b"abcabcabc" * 100
    assert c.decompress(c.compress(raw)) == raw


def test_disabled_passthrough():
    c = Compressor(enabled=False)
    raw = b"data"
    assert c.compress(raw) == raw
    assert c.decompress(raw) == raw
    assert c.ratio(raw) == 1.0


def test_repetitive_data_compresses():
    c = Compressor()
    assert c.ratio(b"\x00" * 4096) < 0.1


def test_random_data_barely_compresses():
    import random

    rng = random.Random(7)
    raw = bytes(rng.getrandbits(8) for _ in range(4096))
    assert c_ratio_close_to_one(Compressor().ratio(raw))


def c_ratio_close_to_one(r):
    return 0.9 < r < 1.1


def test_empty_ratio_is_one():
    assert Compressor().ratio(b"") == 1.0


def test_level_validation():
    with pytest.raises(ValueError):
        Compressor(level=10)


def test_model_cost_scaling():
    m = CompressionModel()
    one_mb = m.compress_time(1024 * 1024, 1)
    two_mb = m.compress_time(2 * 1024 * 1024, 1)
    assert two_mb > one_mb
    # per-object overhead: many small objects cost more than one big one
    assert m.compress_time(1024 * 1024, 1000) > m.compress_time(1024 * 1024, 1)


def test_model_decompress_faster_than_compress():
    m = CompressionModel()
    n = 10 * 1024 * 1024
    assert m.decompress_time(n, 1) < m.compress_time(n, 1)


def test_model_validation():
    with pytest.raises(ValueError):
        CompressionModel(compress_bandwidth=0)
    with pytest.raises(ValueError):
        CompressionModel(per_object_overhead=-1)
