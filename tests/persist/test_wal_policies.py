"""WAL manager policy semantics: ordering, group commit, backpressure."""


from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.kernel import BlockLayer, CpuAccount, F2fs, KernelCosts, PageCache
from repro.nvme import NvmeDevice
from repro.persist import AofRecord, LoggingPolicy, OP_SET, WalManager
from repro.persist.file_backends import FileAppendSink
from repro.sim import Environment

FAST = NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                  channel_transfer=0.0)
CFG = FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                gc_reserve_segments=2)


def world(policy, **wal_kw):
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=48,
                      pages_per_block=16)
    dev = NvmeDevice(env, g, FAST, CFG)
    costs = KernelCosts()
    blk = BlockLayer(env, dev, costs)
    cache = PageCache(env, blk, costs, dirty_limit_bytes=128 * 4096)
    fs = F2fs(env, blk, cache, extent_pages=16)
    acct = CpuAccount(env, "main")
    wal = WalManager(env, FileAppendSink(fs), acct, policy=policy, **wal_kw)
    return env, wal, acct


def rec(i, size=32):
    return AofRecord(op=OP_SET, key=b"k%04d" % i, value=b"v" * size)


def test_record_order_preserved_across_concurrent_always_writers():
    env, wal, acct = world(LoggingPolicy.ALWAYS)
    staged = []

    def writer(base):
        for i in range(10):
            r = rec(base * 100 + i)
            seq = wal.stage(r)
            staged.append((seq, r))
            yield from wal.ensure_durable(seq)
            yield env.timeout(1e-6)

    procs = [env.process(writer(b)) for b in range(4)]
    for p in procs:
        env.run(until=p)
    records = env.run(until=env.process(wal.read_records(acct)))
    # durable order equals staging order
    staged.sort()
    assert [r.key for r in records] == [r.key for _, r in staged]
    wal.close()


def test_group_commit_batches_concurrent_writers():
    env, wal, acct = world(LoggingPolicy.ALWAYS)

    def writer(i):
        yield from wal.log(rec(i))

    procs = [env.process(writer(i)) for i in range(20)]
    for p in procs:
        env.run(until=p)
    # far fewer sink flushes than records: the leader covered followers
    assert wal.counters["sync_flushes"] < 20
    assert wal.counters["records"] == 20
    wal.close()


def test_ensure_durable_is_idempotent():
    env, wal, acct = world(LoggingPolicy.ALWAYS)

    def proc():
        seq = wal.stage(rec(1))
        yield from wal.ensure_durable(seq)
        t0 = env.now
        yield from wal.ensure_durable(seq)  # no-op
        assert env.now == t0

    env.run(until=env.process(proc()))
    wal.close()


def test_periodical_does_not_block_writers():
    env, wal, acct = world(LoggingPolicy.PERIODICAL, flush_interval=0.01)

    def proc():
        t0 = env.now
        for i in range(50):
            wal.stage(rec(i))
        # staging is instantaneous: no simulated time passed
        assert env.now == t0
        yield env.timeout(0.05)

    env.run(until=env.process(proc()))
    assert wal.buffered_bytes == 0  # flusher drained
    wal.close()


def test_backpressure_blocks_then_releases():
    env, wal, acct = world(LoggingPolicy.PERIODICAL, flush_interval=0.005,
                           buffer_limit_bytes=2048)

    def proc():
        for i in range(40):
            wal.stage(rec(i, size=128))
        assert wal.over_buffer_limit
        t0 = env.now
        yield from wal.wait_capacity()
        assert env.now > t0
        assert not wal.over_buffer_limit

    env.run(until=env.process(proc()))
    assert wal.counters["backpressure_waits"] >= 1
    wal.close()


def test_close_releases_backpressure_waiters():
    env, wal, acct = world(LoggingPolicy.PERIODICAL, flush_interval=100.0,
                           buffer_limit_bytes=64)

    def waiter():
        wal.stage(rec(0, size=200))
        yield from wal.wait_capacity()

    p = env.process(waiter())

    def closer():
        yield env.timeout(1e-3)
        wal.close()

    env.process(closer())
    env.run(until=p)  # must terminate


def test_size_tracks_only_current_generation():
    env, wal, acct = world(LoggingPolicy.ALWAYS)

    def proc():
        yield from wal.log(rec(1, size=100))
        s1 = wal.size
        wal.rotate_begin()
        assert wal.size == 0
        yield from wal.log(rec(2, size=100))
        assert wal.size == s1

    env.run(until=env.process(proc()))
    wal.close()
