"""Codec tests: AOF records and RDB streams."""

import pytest

from repro.persist import (
    AofCodec,
    AofRecord,
    CorruptRecord,
    OP_DEL,
    OP_SET,
    RdbReader,
    RdbWriter,
)
from repro.persist.compress import Compressor


def test_aof_record_roundtrip():
    rec = AofRecord(op=OP_SET, key=b"key1", value=b"value1")
    encoded = AofCodec.encode(rec)
    decoded = list(AofCodec.decode_stream(encoded))
    assert decoded == [rec]


def test_aof_del_record():
    rec = AofRecord(op=OP_DEL, key=b"gone")
    assert list(AofCodec.decode_stream(AofCodec.encode(rec))) == [rec]


def test_aof_del_with_value_rejected():
    with pytest.raises(ValueError):
        AofRecord(op=OP_DEL, key=b"k", value=b"v")


def test_aof_bad_op_rejected():
    with pytest.raises(ValueError):
        AofRecord(op=7, key=b"k")


def test_aof_stream_of_many_records():
    recs = [AofRecord(op=OP_SET, key=f"k{i}".encode(), value=b"v" * i)
            for i in range(50)]
    stream = b"".join(AofCodec.encode(r) for r in recs)
    assert list(AofCodec.decode_stream(stream)) == recs


def test_aof_torn_tail_stops_cleanly():
    recs = [AofRecord(op=OP_SET, key=b"a", value=b"1"),
            AofRecord(op=OP_SET, key=b"b", value=b"2")]
    stream = b"".join(AofCodec.encode(r) for r in recs)
    torn = stream[:-3]  # crash mid-append of the second record
    assert list(AofCodec.decode_stream(torn)) == recs[:1]


def test_aof_corrupt_crc_stops_replay():
    stream = bytearray(AofCodec.encode(AofRecord(op=OP_SET, key=b"a", value=b"1")))
    stream[-1] ^= 0xFF
    assert list(AofCodec.decode_stream(bytes(stream))) == []


def test_aof_garbage_prefix_yields_nothing():
    assert list(AofCodec.decode_stream(b"\x00" * 64)) == []


def test_aof_encoded_size_matches():
    rec = AofRecord(op=OP_SET, key=b"abc", value=b"defgh")
    assert len(AofCodec.encode(rec)) == AofCodec.encoded_size(3, 5)


def test_aof_empty_value_allowed():
    rec = AofRecord(op=OP_SET, key=b"k", value=b"")
    assert list(AofCodec.decode_stream(AofCodec.encode(rec))) == [rec]


def rdb_roundtrip(entries, compressor=None):
    comp = compressor or Compressor()
    w = RdbWriter(comp)
    stream = w.header()
    for i in range(0, len(entries), 3):
        stream += w.chunk(entries[i : i + 3])
    stream += w.footer()
    return RdbReader(comp).read_all(stream), stream


def test_rdb_roundtrip_basic():
    entries = [(f"key{i}".encode(), (f"value{i}" * 10).encode())
               for i in range(10)]
    decoded, _ = rdb_roundtrip(entries)
    assert decoded == entries


def test_rdb_empty_snapshot():
    decoded, _ = rdb_roundtrip([])
    assert decoded == []


def test_rdb_uncompressed_mode():
    comp = Compressor(enabled=False)
    entries = [(b"k", b"v" * 100)]
    decoded, stream = rdb_roundtrip(entries, comp)
    assert decoded == entries
    assert b"v" * 50 in stream  # payload is literally in the stream


def test_rdb_compression_flag_mismatch_detected():
    entries = [(b"k", b"v")]
    _, stream = rdb_roundtrip(entries, Compressor(enabled=True))
    with pytest.raises(CorruptRecord, match="compression flag"):
        RdbReader(Compressor(enabled=False)).read_all(stream)


def test_rdb_truncated_stream_rejected():
    entries = [(b"k" * 10, b"v" * 1000)]
    _, stream = rdb_roundtrip(entries)
    with pytest.raises(CorruptRecord):
        RdbReader().read_all(stream[: len(stream) // 2])


def test_rdb_missing_footer_rejected():
    comp = Compressor()
    w = RdbWriter(comp)
    stream = w.header() + w.chunk([(b"k", b"v")])
    with pytest.raises(CorruptRecord, match="footer"):
        RdbReader(comp).read_all(stream)


def test_rdb_flipped_bit_in_chunk_rejected():
    entries = [(b"key", b"val" * 100)]
    _, stream = rdb_roundtrip(entries)
    corrupted = bytearray(stream)
    corrupted[len(stream) // 2] ^= 0x01
    with pytest.raises(CorruptRecord):
        RdbReader().read_all(bytes(corrupted))


def test_rdb_bad_magic_rejected():
    with pytest.raises(CorruptRecord, match="magic"):
        RdbReader().read_all(b"NOT-AN-RDB" + bytes(64))


def test_rdb_writer_state_machine():
    w = RdbWriter()
    with pytest.raises(RuntimeError):
        w.chunk([(b"k", b"v")])  # header first
    w.header()
    with pytest.raises(RuntimeError):
        w.header()
    w.footer()
    with pytest.raises(RuntimeError):
        w.chunk([(b"k", b"v")])
    with pytest.raises(RuntimeError):
        w.footer()


def test_rdb_entry_count_tracked():
    w = RdbWriter()
    w.header()
    w.chunk([(b"a", b"1"), (b"b", b"2")])
    w.chunk([(b"c", b"3")])
    assert w.entries_written == 3


def test_rdb_binary_safe_keys_and_values():
    entries = [(bytes(range(256)), bytes(reversed(range(256))))]
    decoded, _ = rdb_roundtrip(entries)
    assert decoded == entries
