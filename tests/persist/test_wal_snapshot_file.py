"""WAL manager + snapshot writer over the baseline file backends."""

import pytest

from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.kernel import BlockLayer, CpuAccount, Ext4, KernelCosts, PageCache
from repro.nvme import NvmeDevice
from repro.persist import (
    AofRecord,
    LoggingPolicy,
    OP_SET,
    SnapshotKind,
    SnapshotWriterProcess,
    WalManager,
    recover_store,
)
from repro.persist.file_backends import (
    FileAppendSink,
    FileSnapshotSink,
    FileSnapshotSource,
)
from repro.sim import Environment

FAST_NAND = NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                       channel_transfer=0.0)
FTL_CFG = FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                    gc_reserve_segments=2)


@pytest.fixture
def world():
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=48,
                      pages_per_block=16)
    dev = NvmeDevice(env, g, FAST_NAND, FTL_CFG)
    costs = KernelCosts()
    blk = BlockLayer(env, dev, costs)
    cache = PageCache(env, blk, costs, dirty_limit_bytes=128 * 4096)
    fs = Ext4(env, blk, cache, extent_pages=16)
    return env, fs, dev


def drive(env, gen):
    p = env.process(gen)
    return env.run(until=p)


def test_always_log_each_record_durable(world):
    env, fs, dev = world
    acct = CpuAccount(env, "main")
    sink = FileAppendSink(fs)
    wal = WalManager(env, sink, acct, policy=LoggingPolicy.ALWAYS)

    def proc():
        yield from wal.log(AofRecord(op=OP_SET, key=b"k1", value=b"v1"))
        yield from wal.log(AofRecord(op=OP_SET, key=b"k2", value=b"v2"))

    drive(env, proc())
    # crash: everything must already be on the device
    fs.cache.crash()
    records = drive(env, wal.read_records(acct))
    # read after crash misses cache but hits device
    assert [(r.key, r.value) for r in records] == [(b"k1", b"v1"), (b"k2", b"v2")]
    assert wal.counters["sync_flushes"] == 2


def test_periodical_log_buffers_then_flushes(world):
    env, fs, dev = world
    acct = CpuAccount(env, "main")
    sink = FileAppendSink(fs)
    wal = WalManager(env, sink, acct, policy=LoggingPolicy.PERIODICAL,
                     flush_interval=0.01)

    def proc():
        for i in range(10):
            yield from wal.log(AofRecord(op=OP_SET, key=f"k{i}".encode(),
                                         value=b"v"))
        assert wal.buffered_bytes > 0  # not yet flushed
        yield env.timeout(0.05)  # let the flusher fire

    drive(env, proc())
    assert wal.buffered_bytes == 0
    assert wal.counters["periodic_flushes"] >= 1
    records = drive(env, wal.read_records(acct))
    assert len(records) == 10
    wal.close()


def test_periodical_log_buffer_pressure_forces_flush(world):
    env, fs, dev = world
    acct = CpuAccount(env, "main")
    sink = FileAppendSink(fs)
    wal = WalManager(env, sink, acct, policy=LoggingPolicy.PERIODICAL,
                     flush_interval=100.0, buffer_limit_bytes=1024)

    def proc():
        for i in range(100):
            yield from wal.log(AofRecord(op=OP_SET, key=b"key", value=b"x" * 64))
        yield env.timeout(0.1)

    drive(env, proc())
    assert wal.counters["periodic_flushes"] >= 1
    wal.close()


def test_wal_size_counts_all_generations_bytes(world):
    env, fs, dev = world
    acct = CpuAccount(env, "main")
    wal = WalManager(env, FileAppendSink(fs), acct, policy=LoggingPolicy.ALWAYS)

    def proc():
        yield from wal.log(AofRecord(op=OP_SET, key=b"k", value=b"v" * 100))

    drive(env, proc())
    assert wal.size > 100


def test_wal_rotation_keeps_old_until_retired(world):
    from repro.persist.encoding import AofCodec

    env, fs, dev = world
    acct = CpuAccount(env, "main")
    sink = FileAppendSink(fs)
    wal = WalManager(env, sink, acct, policy=LoggingPolicy.ALWAYS)

    def proc():
        yield from wal.log(AofRecord(op=OP_SET, key=b"old", value=b"1"))
        wal.rotate_begin()
        yield from wal.log(AofRecord(op=OP_SET, key=b"new", value=b"2"))

    drive(env, proc())
    # current generation only counts post-rotation bytes
    assert wal.size == len(
        AofCodec.encode(AofRecord(op=OP_SET, key=b"new", value=b"2")))
    # both generations replay until the old one is retired
    records = drive(env, wal.read_records(acct))
    assert [r.key for r in records] == [b"old", b"new"]
    assert fs.exists("appendonly.aof.0")

    drive(env, wal.retire_previous())
    records = drive(env, wal.read_records(acct))
    assert [r.key for r in records] == [b"new"]
    assert not fs.exists("appendonly.aof.0")


def test_wal_records_between_fork_and_retire_survive(world):
    """The regression the rotation protocol exists for: a record logged
    while the snapshot child is still running must not vanish when the
    old generation is retired."""
    env, fs, dev = world
    acct = CpuAccount(env, "main")
    wal = WalManager(env, FileAppendSink(fs), acct,
                     policy=LoggingPolicy.ALWAYS)

    def proc():
        yield from wal.log(AofRecord(op=OP_SET, key=b"pre", value=b"1"))
        wal.rotate_begin()  # fork instant
        yield from wal.log(AofRecord(op=OP_SET, key=b"during", value=b"2"))
        yield from wal.retire_previous()  # snapshot durable

    drive(env, proc())
    records = drive(env, wal.read_records(acct))
    assert [r.key for r in records] == [b"during"]


def test_snapshot_roundtrip_through_file_sink(world):
    env, fs, dev = world
    items = [(f"key{i}".encode(), (f"val{i}" * 20).encode()) for i in range(200)]
    sink = FileSnapshotSink(fs, "dump.rdb")
    snap = SnapshotWriterProcess(env, items, sink, kind=SnapshotKind.ON_DEMAND,
                                 chunk_entries=32)
    stats = drive(env, snap.run())
    assert stats.ok
    assert stats.entries == 200
    assert stats.duration > 0
    assert fs.exists("dump.rdb")

    acct = CpuAccount(env, "recovery")
    source = FileSnapshotSource(fs, "dump.rdb")
    result = drive(env, recover_store(env, source, None, acct))
    assert result.data == dict(items)
    assert result.snapshot_entries == 200
    assert result.throughput > 0


def test_snapshot_survives_cache_crash_after_finalize(world):
    env, fs, dev = world
    items = [(b"k%d" % i, b"v" * 50) for i in range(50)]
    sink = FileSnapshotSink(fs)
    stats = drive(env, SnapshotWriterProcess(env, items, sink).run())
    assert stats.ok
    fs.cache.crash()
    acct = CpuAccount(env, "recovery")
    result = drive(env, recover_store(env, FileSnapshotSource(fs), None, acct))
    assert result.data == dict(items)


def test_snapshot_replaces_previous_only_on_success(world):
    env, fs, dev = world
    items_v1 = [(b"k", b"version1")]
    drive(env, SnapshotWriterProcess(env, items_v1, FileSnapshotSink(fs)).run())

    class ExplodingSink(FileSnapshotSink):
        def __init__(self, fs):
            super().__init__(fs)
            self._writes = 0

        def write(self, data, account):
            self._writes += 1
            if self._writes == 2:
                raise IOError("injected failure")
            yield from super().write(data, account)

    items_v2 = [(b"k", b"version2")]
    snap = SnapshotWriterProcess(env, items_v2, ExplodingSink(fs))

    def attempt():
        try:
            yield from snap.run()
        except IOError:
            pass

    drive(env, attempt())
    assert not snap.stats.ok
    acct = CpuAccount(env, "recovery")
    result = drive(env, recover_store(env, FileSnapshotSource(fs), None, acct))
    assert result.data == {b"k": b"version1"}  # old snapshot intact


def test_recovery_snapshot_plus_wal_replay(world):
    env, fs, dev = world
    acct = CpuAccount(env, "main")
    items = [(b"a", b"1"), (b"b", b"2")]
    drive(env, SnapshotWriterProcess(env, items, FileSnapshotSink(fs)).run())
    wal = WalManager(env, FileAppendSink(fs), acct, policy=LoggingPolicy.ALWAYS)

    def writes():
        yield from wal.log(AofRecord(op=OP_SET, key=b"b", value=b"2-new"))
        yield from wal.log(AofRecord(op=OP_SET, key=b"c", value=b"3"))

    drive(env, writes())
    r_acct = CpuAccount(env, "recovery")
    result = drive(env, recover_store(env, FileSnapshotSource(fs), wal.sink, r_acct))
    assert result.data == {b"a": b"1", b"b": b"2-new", b"c": b"3"}
    assert result.wal_records_applied == 2


def test_recovery_wal_only(world):
    env, fs, dev = world
    acct = CpuAccount(env, "main")
    wal = WalManager(env, FileAppendSink(fs), acct, policy=LoggingPolicy.ALWAYS)

    def writes():
        yield from wal.log(AofRecord(op=OP_SET, key=b"x", value=b"y"))

    drive(env, writes())
    result = drive(env, recover_store(env, None, wal.sink,
                                      CpuAccount(env, "rec")))
    assert result.data == {b"x": b"y"}
    assert result.snapshot_entries == 0


def test_snapshot_breakdown_has_memory_kernel_ssd_components(world):
    env, fs, dev = world
    items = [(b"k%d" % i, bytes(500)) for i in range(300)]
    stats = drive(env, SnapshotWriterProcess(env, items,
                                             FileSnapshotSink(fs)).run())
    assert stats.time_in_memory() > 0
    assert stats.time_in_kernel() > 0
    assert stats.time_in_memory() + stats.time_in_kernel() <= stats.duration * 1.01


def test_snapshot_compression_ratio_reported(world):
    env, fs, dev = world
    items = [(b"k%d" % i, b"\x00" * 1000) for i in range(100)]  # compressible
    stats = drive(env, SnapshotWriterProcess(env, items,
                                             FileSnapshotSink(fs)).run())
    assert stats.compression_ratio < 0.5


def test_invalid_configs(world):
    env, fs, dev = world
    acct = CpuAccount(env, "m")
    with pytest.raises(ValueError):
        WalManager(env, FileAppendSink(fs, "w2"), acct, flush_interval=0)
    with pytest.raises(ValueError):
        SnapshotWriterProcess(env, [], FileSnapshotSink(fs), chunk_entries=0)
