"""Property-based codec tests."""

from hypothesis import given, settings, strategies as st

from repro.persist import AofCodec, AofRecord, OP_SET, RdbReader, RdbWriter
from repro.persist.compress import Compressor

keys = st.binary(min_size=0, max_size=64)
values = st.binary(min_size=0, max_size=512)


@given(st.lists(st.tuples(keys, values), max_size=40))
@settings(max_examples=60, deadline=None)
def test_aof_stream_roundtrip(pairs):
    recs = [AofRecord(op=OP_SET, key=k, value=v) for k, v in pairs]
    stream = b"".join(AofCodec.encode(r) for r in recs)
    assert list(AofCodec.decode_stream(stream)) == recs


@given(st.lists(st.tuples(keys, values), max_size=40),
       st.integers(min_value=0, max_value=2000))
@settings(max_examples=60, deadline=None)
def test_aof_arbitrary_truncation_is_prefix(pairs, cut):
    """Any truncation decodes to a strict prefix of the full stream."""
    recs = [AofRecord(op=OP_SET, key=k, value=v) for k, v in pairs]
    stream = b"".join(AofCodec.encode(r) for r in recs)
    cut = min(cut, len(stream))
    decoded = list(AofCodec.decode_stream(stream[:cut]))
    assert decoded == recs[: len(decoded)]


@given(st.lists(st.tuples(keys, values), max_size=30),
       st.integers(min_value=1, max_value=7),
       st.booleans())
@settings(max_examples=60, deadline=None)
def test_rdb_roundtrip_any_chunking(pairs, chunk, compressed):
    comp = Compressor(enabled=compressed)
    w = RdbWriter(comp)
    stream = w.header()
    for i in range(0, len(pairs), chunk):
        stream += w.chunk(pairs[i : i + chunk])
    stream += w.footer()
    assert RdbReader(comp).read_all(stream) == pairs


@given(st.lists(st.tuples(keys, values), min_size=1, max_size=20),
       st.integers(min_value=0, max_value=10_000), st.integers(0, 255))
@settings(max_examples=80, deadline=None)
def test_rdb_single_byte_corruption_never_passes_silently(pairs, pos, xor):
    """Flip one byte anywhere: the reader must either raise or (if the
    flip is a no-op) return identical data — never wrong data."""

    from repro.persist import CorruptRecord

    comp = Compressor()
    w = RdbWriter(comp)
    stream = w.header()
    stream += w.chunk(pairs)
    stream += w.footer()
    if xor == 0:
        return
    pos = pos % len(stream)
    corrupted = bytearray(stream)
    corrupted[pos] ^= xor
    try:
        decoded = RdbReader(comp).read_all(bytes(corrupted))
    except (CorruptRecord, Exception):
        return
    assert decoded == pairs
