"""Scale presets + CLI tests."""

import pytest

from repro.bench import BENCH_SCALE, TEST_SCALE
from repro.bench.__main__ import main as bench_main
from repro.bench.scales import get_scale


def test_scale_registry():
    assert get_scale("test") is TEST_SCALE
    assert get_scale("bench") is BENCH_SCALE
    with pytest.raises(KeyError):
        get_scale("galactic")


def test_scales_shrink_together():
    t, b = TEST_SCALE, BENCH_SCALE
    assert t.redis_ops <= b.redis_ops
    assert t.small_device_mb < b.small_device_mb
    assert t.wal_trigger_bytes < b.wal_trigger_bytes
    assert t.ycsb_ops <= b.ycsb_ops


def test_system_config_construction():
    for gc in (True, False):
        cfg = TEST_SCALE.system_config(gc_pressure=gc)
        assert cfg.server.wal_snapshot_trigger_bytes == TEST_SCALE.wal_trigger_bytes
    cfg = TEST_SCALE.system_config(gc_pressure=False, trigger=False)
    assert cfg.server.wal_snapshot_trigger_bytes is None


def test_system_config_overrides():
    cfg = TEST_SCALE.system_config(gc_pressure=False, fdp=False, sqpoll=False)
    assert cfg.fdp is False and cfg.sqpoll is False


def test_erase_time_scales_with_block_size():
    nand = TEST_SCALE._nand()
    assert nand.block_erase == pytest.approx(
        2e-3 * TEST_SCALE.pages_per_block / 256)


def test_workload_factories_apply_scale():
    w = TEST_SCALE.redis_bench()
    assert w.total_ops == TEST_SCALE.redis_ops
    assert w.value_size == TEST_SCALE.redis_value
    y = TEST_SCALE.ycsb_a(total_ops=5)
    assert y.total_ops == 5
    assert y.zipfian


def test_cli_list(capsys):
    assert bench_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "table5", "figure4"):
        assert name in out


def test_cli_unknown_experiment(capsys):
    assert bench_main(["tableX"]) == 2


def test_cli_runs_one_experiment(capsys):
    assert bench_main(["table5", "--scale", "test"]) == 0
    out = capsys.readouterr().out
    assert "Recovery" in out
    assert "[ok]" in out
