"""Report formatting tests."""

import numpy as np

from repro.bench import ExperimentResult, format_table
from repro.bench.plots import spark, timeline_chart


def test_format_table_alignment():
    out = format_table(["a", "long header"], [[1, 2.5], [10000, 0.001]])
    lines = out.splitlines()
    assert len(lines) == 4
    widths = {len(l) for l in lines}
    assert len(widths) == 1  # all lines equal width


def test_format_table_value_rendering():
    out = format_table(["x"], [[123456.0], [float("nan")], [0.00012345]])
    assert "123,456" in out
    assert "-" in out
    assert "0.0001234" in out or "0.0001235" in out


def test_experiment_result_checks_and_format():
    r = ExperimentResult("Table X", "demo", ["col"], paper_reference="ref")
    r.add_row(42)
    r.check("good", True)
    r.check("bad", False)
    assert not r.shapes_hold
    text = r.format()
    assert "Table X" in text
    assert "[ok] good" in text
    assert "[MISS] bad" in text
    assert "ref" in text


def test_experiment_result_all_pass():
    r = ExperimentResult("T", "t", ["c"])
    r.check("a", True)
    assert r.shapes_hold


def test_spark_shapes():
    assert spark([]) == ""
    s = spark([0, 1, 2, 4])
    assert len(s) == 4
    assert s[0] == " "  # zero renders empty
    assert s[-1] == "█"


def test_spark_all_zero():
    assert spark([0, 0]) == "  "


def test_timeline_chart_renders_bands():
    series = {
        "a": (np.arange(10.0), np.linspace(0, 100, 10)),
        "b": (np.arange(10.0), np.full(10, 50.0)),
    }
    out = timeline_chart(series, width=20, height=4)
    assert "a  (peak" in out
    assert "b  (peak" in out
    assert out.count("+" + "-" * 20) == 2


def test_timeline_chart_empty():
    assert timeline_chart({}) == "(no series)"
    out = timeline_chart({"x": (np.array([]), np.array([]))})
    assert "(empty)" in out


def test_format_includes_series_chart():
    r = ExperimentResult("F", "fig", ["c"])
    r.add_row(1)
    r.series["sys"] = (np.arange(5.0), np.arange(5.0))
    assert "peak" in r.format()
