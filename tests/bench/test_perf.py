"""The perf-regression gate: compare grading and the trajectory log."""

import json

from repro.bench.perf import append_trajectory, compare_records, main


def _record(wall=10.0, events=1000, per_experiment=None):
    exps = per_experiment or {"ycsb": events}
    return {
        "optimized": {
            "scale": "test",
            "experiments": {
                name: {"wall_s": wall, "sim_events": ev}
                for name, ev in exps.items()
            },
            "total_wall_s": wall,
            "total_sim_events": sum(exps.values()),
            "events_per_sec": 100,
        },
    }


class TestCompareRecords:
    def test_identical_records_are_clean(self, capsys):
        warns, fails = compare_records(_record(), _record())
        assert warns == [] and fails == []

    def test_wall_between_warn_and_fail_only_warns(self):
        warns, fails = compare_records(
            _record(wall=10.0), _record(wall=25.0),
            warn_factor=2.0, fail_factor=3.0)
        assert len(warns) == 1 and fails == []

    def test_wall_beyond_fail_factor_fails(self):
        warns, fails = compare_records(
            _record(wall=10.0), _record(wall=40.0),
            warn_factor=2.0, fail_factor=3.0)
        assert warns == []
        assert len(fails) == 1 and "4.00x" in fails[0]

    def test_event_growth_beyond_budget_fails(self):
        """Simulated events are deterministic: >5% growth in any one
        experiment is a hard failure, whatever the wall clock did."""
        warns, fails = compare_records(
            _record(events=1000), _record(events=1100))
        assert len(fails) == 1
        assert "deterministic" in fails[0]

    def test_event_growth_within_budget_passes(self, capsys):
        warns, fails = compare_records(
            _record(events=1000), _record(events=1040))
        assert fails == []
        assert "within 1.05x budget" in capsys.readouterr().out

    def test_new_experiment_is_noted_not_failed(self, capsys):
        base = _record(per_experiment={"ycsb": 1000})
        curr = _record(per_experiment={"ycsb": 1000, "tailtrace": 9000})
        warns, fails = compare_records(base, curr)
        assert fails == []
        assert "rebaseline" in capsys.readouterr().out


class TestCompareCli:
    def _write(self, tmp_path, name, record):
        p = tmp_path / name
        p.write_text(json.dumps(record))
        return str(p)

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _record(events=1000))
        curr = self._write(tmp_path, "curr.json", _record(events=1200))
        assert main(["--compare", base, curr]) == 1
        assert "::error ::perf-smoke" in capsys.readouterr().out

    def test_warn_only_escape_hatch_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _record(events=1000))
        curr = self._write(tmp_path, "curr.json", _record(events=1200))
        assert main(["--compare", base, curr, "--warn-only"]) == 0
        assert "exempted" in capsys.readouterr().out

    def test_missing_baseline_is_skipped_not_failed(self, tmp_path):
        curr = self._write(tmp_path, "curr.json", _record())
        assert main(["--compare", str(tmp_path / "nope.json"), curr]) == 0


def test_append_trajectory_accumulates():
    first = append_trajectory({}, _record()["optimized"])
    assert len(first) == 1
    assert first[0]["total_sim_events"] == 1000
    second = append_trajectory(
        {"trajectory": first}, _record(wall=12.0)["optimized"])
    assert len(second) == 2
    assert second[0] == first[0]
    assert second[1]["total_wall_s"] == 12.0
