"""The fast-lane determinism contract (see docs/PERFORMANCE.md).

The simulator's optimized paths — engine inline resume, batched NAND
bursts, memoized model code — must be *result-invariant*: every
experiment report is byte-identical whether the fast lanes are on or
off, run to run, and serial or parallel. These tests are the contract;
an engine change that breaks ordering shows up here as a digest
mismatch naming the experiment.

The matrix runs at a shrunken scale so the full experiment set stays
affordable in CI; the fast/slow pairing is what matters, not the
absolute op counts.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.scales import TEST_SCALE

#: TEST_SCALE shrunk ~4x: big enough that WAL triggers fire and GC
#: runs (the interesting orderings), small enough for a full matrix
TINY = replace(
    TEST_SCALE,
    redis_ops=4_000,
    redis_keys=200,
    ycsb_ops=2_500,
    ycsb_keys=400,
    warmup_ops=500,
    wal_trigger_bytes=2 * 1024 * 1024,
    gc_heavy_trigger_bytes=2 * 1024 * 1024,
)


def _digest(name: str, *, batched: bool, fast_sim: bool,
            fast_forward: bool = True) -> str:
    scale = replace(TINY, batched=batched, fast_sim=fast_sim,
                    fast_forward=fast_forward)
    report = EXPERIMENTS[name](scale).format()
    return hashlib.sha256(report.encode()).hexdigest()


@pytest.mark.parametrize("name", list(EXPERIMENTS))
def test_batched_fast_path_is_result_invariant(name):
    """All fast lanes on vs fully off: byte-identical reports."""
    fast = _digest(name, batched=True, fast_sim=True, fast_forward=True)
    slow = _digest(name, batched=False, fast_sim=False,
                   fast_forward=False)
    assert fast == slow, (
        f"{name}: optimized report diverged from the reference path"
    )


@pytest.mark.parametrize("name", ["table1", "figure4"])
def test_each_lane_is_independently_invariant(name):
    """The three knobs are independent; each alone must be inert too."""
    fast = _digest(name, batched=True, fast_sim=True)
    assert _digest(name, batched=False, fast_sim=True) == fast
    assert _digest(name, batched=True, fast_sim=False) == fast
    assert _digest(name, batched=True, fast_sim=True,
                   fast_forward=False) == fast


@pytest.mark.parametrize("name", ["table1", "table3"])
def test_fast_forward_cube(name):
    """Fast-forward is inert across the whole batched×fast_sim cube —
    closed-form absorption may never depend on the other lanes for its
    equivalence argument (their per-tick event counts differ)."""
    ref = _digest(name, batched=True, fast_sim=True, fast_forward=True)
    for batched in (True, False):
        for fast_sim in (True, False):
            for ff in (True, False):
                assert _digest(name, batched=batched, fast_sim=fast_sim,
                               fast_forward=ff) == ref, (
                    f"{name}: diverged at batched={batched} "
                    f"fast_sim={fast_sim} fast_forward={ff}"
                )


def test_fast_forward_preserves_logical_event_count():
    """``events_processed + events_absorbed`` is lane-invariant, so
    the perf report's sim_events metric means the same thing whichever
    lane produced it."""
    import repro.sim.engine as se

    totals = {}
    for ff in (True, False):
        se.track_environments(True)
        try:
            EXPERIMENTS["table1"](replace(TINY, fast_forward=ff))
            totals[ff] = se.tracked_event_total()
        finally:
            se.track_environments(False)
    assert totals[True] == totals[False]


def test_run_to_run_identical():
    """Same config twice in one process: no hidden global state."""
    assert _digest("table3", batched=True, fast_sim=True) == \
        _digest("table3", batched=True, fast_sim=True)


def test_jobs_serial_vs_parallel_identical(tmp_path):
    """--jobs 1 and --jobs 4 write byte-identical report files."""
    from repro.bench.__main__ import main

    serial = tmp_path / "serial.txt"
    parallel = tmp_path / "parallel.txt"
    args = ["table1", "table2", "--scale", "test",
            "--cache-dir", str(tmp_path / "cache")]
    assert main(args + ["--out", str(serial), "--jobs", "1"]) == 0
    # --refresh so the parallel pass recomputes in worker processes
    # instead of replaying the serial pass's cache entries
    assert main(args + ["--out", str(parallel), "--jobs", "4",
                        "--refresh"]) == 0
    assert serial.read_bytes() == parallel.read_bytes()
