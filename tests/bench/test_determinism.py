"""The fast-lane determinism contract (see docs/PERFORMANCE.md).

The simulator's optimized paths — engine inline resume, batched NAND
bursts, memoized model code — must be *result-invariant*: every
experiment report is byte-identical whether the fast lanes are on or
off, run to run, and serial or parallel. These tests are the contract;
an engine change that breaks ordering shows up here as a digest
mismatch naming the experiment.

The matrix runs at a shrunken scale so the full experiment set stays
affordable in CI; the fast/slow pairing is what matters, not the
absolute op counts.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.scales import TEST_SCALE

#: TEST_SCALE shrunk ~4x: big enough that WAL triggers fire and GC
#: runs (the interesting orderings), small enough for a full matrix
TINY = replace(
    TEST_SCALE,
    redis_ops=4_000,
    redis_keys=200,
    ycsb_ops=2_500,
    ycsb_keys=400,
    warmup_ops=500,
    wal_trigger_bytes=2 * 1024 * 1024,
    gc_heavy_trigger_bytes=2 * 1024 * 1024,
)


def _digest(name: str, *, batched: bool, fast_sim: bool) -> str:
    scale = replace(TINY, batched=batched, fast_sim=fast_sim)
    report = EXPERIMENTS[name](scale).format()
    return hashlib.sha256(report.encode()).hexdigest()


@pytest.mark.parametrize("name", list(EXPERIMENTS))
def test_batched_fast_path_is_result_invariant(name):
    """Fast lanes on vs fully off: byte-identical reports."""
    fast = _digest(name, batched=True, fast_sim=True)
    slow = _digest(name, batched=False, fast_sim=False)
    assert fast == slow, (
        f"{name}: optimized report diverged from the reference path"
    )


@pytest.mark.parametrize("name", ["table1", "figure4"])
def test_each_lane_is_independently_invariant(name):
    """The two knobs are independent; each alone must be inert too."""
    fast = _digest(name, batched=True, fast_sim=True)
    assert _digest(name, batched=False, fast_sim=True) == fast
    assert _digest(name, batched=True, fast_sim=False) == fast


def test_run_to_run_identical():
    """Same config twice in one process: no hidden global state."""
    assert _digest("table3", batched=True, fast_sim=True) == \
        _digest("table3", batched=True, fast_sim=True)


def test_jobs_serial_vs_parallel_identical(tmp_path):
    """--jobs 1 and --jobs 4 write byte-identical report files."""
    from repro.bench.__main__ import main

    serial = tmp_path / "serial.txt"
    parallel = tmp_path / "parallel.txt"
    args = ["table1", "table2", "--scale", "test",
            "--cache-dir", str(tmp_path / "cache")]
    assert main(args + ["--out", str(serial), "--jobs", "1"]) == 0
    # --refresh so the parallel pass recomputes in worker processes
    # instead of replaying the serial pass's cache entries
    assert main(args + ["--out", str(parallel), "--jobs", "4",
                        "--refresh"]) == 0
    assert serial.read_bytes() == parallel.read_bytes()
