"""The ``sweep`` subcommand end to end: determinism across --jobs.

The report and CSV must be byte-identical whatever the process count
and whether rows came from the cache or fresh simulation — that
equivalence is what makes the on-disk cache safe to trust. The grid
here is synthetic (module-level runner, so it pickles into the worker
pool) and includes a deliberately failing corner, so the whole
mixed-row path — format, CSV, top-N, knife edges, heatmaps — is
exercised through the real CLI.
"""

from __future__ import annotations

import pytest

from repro.bench.__main__ import _sweep_main, main
from repro.bench.sweep import EdgeSpec, GridSpec


def cli_runner(params):
    if params["b"] == "bad" and params["a"] == 2:
        raise RuntimeError("infeasible corner")
    waf = 4.0 if params["a"] == 3 else 1.0
    return {"waf": waf, "score": 10.0 * params["a"] + len(params["b"])}


def _registry(scale_name):
    return {
        "toy": GridSpec(
            name="toy",
            axes={"a": [1, 2, 3], "b": ["ok", "bad"]},
            runner=cli_runner,
            edges=(EdgeSpec("waf", factor=2.0),),
            panels=(("a", "b", "score"),),
            description="synthetic CLI grid",
        ),
    }


@pytest.fixture(autouse=True)
def toy_grids(monkeypatch):
    from repro.bench import experiments

    monkeypatch.setattr(experiments, "sweep_grids", _registry)


def _run(tmp_path, tag, jobs, cache_dir=None, refresh=False):
    out = tmp_path / tag
    argv = ["--comprehensive", "--scale", "test", "--jobs", str(jobs),
            "--out-dir", str(out)]
    if cache_dir is None:
        argv.append("--no-cache")
    else:
        argv += ["--cache-dir", str(cache_dir)]
    if refresh:
        argv.append("--refresh")
    assert _sweep_main(argv) == 0
    # the report names its own CSV path; normalize the per-run out-dir
    # so runs stay comparable byte-for-byte
    report = (out / "sweep_test_report.txt").read_text()
    report = report.replace(str(out), "<out>")
    return (out / "toy_test.csv").read_bytes(), report.encode()


def test_jobs_1_and_4_are_byte_identical(tmp_path, capsys):
    cache = tmp_path / "cache"
    cold = _run(tmp_path, "j1", jobs=1, cache_dir=cache)  # populates
    warm = _run(tmp_path, "j4", jobs=4, cache_dir=cache)  # replays
    nocache = _run(tmp_path, "nc", jobs=4)                # recomputes
    assert cold == warm  # cache hits render identically to fresh runs
    assert cold == nocache  # and the cache never altered the content
    text = cold[1].decode()
    assert "infeasible corner" in text  # the failing point is mapped
    assert "knife" in text.lower() or "waf" in text
    capsys.readouterr()  # swallow the report prints


def test_report_contents(tmp_path, capsys):
    _, report = _run(tmp_path, "r", jobs=1)
    text = report.decode()
    out = capsys.readouterr().out
    # stdout mirrors the report file (modulo the normalized CSV path)
    assert text.splitlines()[0] in out
    assert "Bottom " in out
    assert "== Sweep: toy @ test (6 points) ==" in text
    assert "Top " in text and "Bottom " in text
    assert "(5 feasible points, 1 infeasible)" in text
    # the planted a=2->3 waf cliff is flagged
    assert "2->3" in text


def test_sweep_list_and_errors(tmp_path, capsys):
    assert _sweep_main(["--list"]) == 0
    assert "toy: 6 points" in capsys.readouterr().out
    assert _sweep_main(["--grid", "nope", "--out-dir",
                        str(tmp_path)]) == 2
    assert _sweep_main(["--out-dir", str(tmp_path)]) == 2  # no grid
    assert _sweep_main(["--comprehensive", "--jobs", "0",
                        "--out-dir", str(tmp_path)]) == 2


def test_main_routes_sweep_and_tune(tmp_path, capsys, monkeypatch):
    # `python -m repro.bench sweep ...` must reach _sweep_main
    assert main(["sweep", "--list"]) == 0
    assert "toy" in capsys.readouterr().out
    # and `tune` reaches the tuner CLI (unknown workload -> exit 2,
    # proving the subcommand routed rather than argparse-failed)
    assert main(["tune", "--workload", "nope", "--scale", "test",
                 "--no-cache"]) == 2
