"""The on-disk result cache: keying, roundtrip, corruption recovery."""

from __future__ import annotations

from dataclasses import replace

from repro.bench import cache
from repro.bench.scales import TEST_SCALE, BENCH_SCALE


def test_key_is_stable_and_input_sensitive():
    k1 = cache.cache_key("table3", TEST_SCALE)
    assert k1 == cache.cache_key("table3", TEST_SCALE)
    assert k1 != cache.cache_key("table4", TEST_SCALE)
    assert k1 != cache.cache_key("table3", BENCH_SCALE)
    # any scale-field change must miss — fast lanes included, since
    # they are part of what a cached result claims to represent
    assert k1 != cache.cache_key("table3",
                                 replace(TEST_SCALE, batched=False))


def test_key_params_prevent_sweep_point_collisions():
    # regression: sweep points were keyed on (experiment, scale) only,
    # so every point of a grid collided on one cache slot and the
    # first point's measurements were replayed for all of them
    base = cache.cache_key("cluster", TEST_SCALE)
    p1 = cache.cache_key("cluster", TEST_SCALE, {"ru_pages": 4})
    p2 = cache.cache_key("cluster", TEST_SCALE, {"ru_pages": 8})
    assert len({base, p1, p2}) == 3
    # a params-free report and an empty parameter dict are different
    # cells too — {} must not alias the whole-experiment entry
    assert cache.cache_key("cluster", TEST_SCALE, {}) != base
    # key order is irrelevant; the assignment is what matters
    a = cache.cache_key("cluster", TEST_SCALE, {"x": 1, "y": 2})
    b = cache.cache_key("cluster", TEST_SCALE, {"y": 2, "x": 1})
    assert a == b
    # same params, different experiment or scale still miss
    assert p1 != cache.cache_key("single", TEST_SCALE, {"ru_pages": 4})
    assert p1 != cache.cache_key("cluster", BENCH_SCALE, {"ru_pages": 4})


def test_values_roundtrip_and_corruption(tmp_path):
    key = cache.cache_key("grid", TEST_SCALE, {"a": 1})
    assert cache.load_values(key, tmp_path) is None  # cold miss
    values = {"rps": 123.5, "waf": 1.0, "pid_mode": "collapse"}
    path = cache.store_values(key, "grid", values, tmp_path)
    assert cache.load_values(key, tmp_path) == values

    path.write_text("{not json")
    assert cache.load_values(key, tmp_path) is None
    assert not path.exists()  # removed so the recompute can overwrite

    # checksum mismatch (silent bit rot) is also a miss
    cache.store_values(key, "grid", values, tmp_path)
    payload = path.read_text().replace("123.5", "999.9")
    path.write_text(payload)
    assert cache.load_values(key, tmp_path) is None

    cache.store_values(key, "grid", values, tmp_path)
    assert cache.load_values(key, tmp_path) == values


def test_key_changes_with_code_digest(monkeypatch):
    k1 = cache.cache_key("table3", TEST_SCALE)
    monkeypatch.setattr(cache, "_code_digest", "different-tree")
    assert cache.cache_key("table3", TEST_SCALE) != k1


def test_roundtrip(tmp_path):
    key = cache.cache_key("table1", TEST_SCALE)
    assert cache.load(key, tmp_path) is None  # cold miss
    cache.store(key, "table1", "report body\n", True, tmp_path)
    assert cache.load(key, tmp_path) == ("report body\n", True)


def test_corrupt_entry_is_discarded(tmp_path):
    key = cache.cache_key("table1", TEST_SCALE)
    path = cache.store(key, "table1", "report body\n", False, tmp_path)

    path.write_text("{not json")
    assert cache.load(key, tmp_path) is None
    assert not path.exists()  # removed so the recompute can overwrite

    # checksum mismatch (silent bit rot) is also a miss
    cache.store(key, "table1", "report body\n", False, tmp_path)
    payload = path.read_text().replace("report body", "tampered bod")
    path.write_text(payload)
    assert cache.load(key, tmp_path) is None

    # and the slot is reusable afterwards
    cache.store(key, "table1", "report body\n", True, tmp_path)
    assert cache.load(key, tmp_path) == ("report body\n", True)
