"""Knife-edge detection: planted cliffs, noise floors, the PR-4 cliff.

A knife edge is two *adjacent* grid points — one axis stepped, every
other parameter fixed — whose metric jumps by more than a factor. The
detector's job is to surface configuration cliffs that point estimates
hide; the canonical one in this tree is ``gc_stop_segments`` 6→5 on
the pinned cluster device (copying GC vs copy-free), found in PR 4 and
re-found here from the real simulator at tiny scale.
"""

from __future__ import annotations

import pytest

from repro.bench.sweep import (
    EdgeSpec,
    KnifeEdge,
    detect_knife_edges,
    format_knife_edges,
    sweep,
)


def planted_runner(params):
    """Smooth everywhere except a cliff between x=2 and x=3 at y=1."""
    x, y = params["x"], params["y"]
    waf = 1.0
    if x >= 3 and y == 1:
        waf = 4.0  # the planted cliff
    return {"waf": waf, "rps": 100.0 - x}


@pytest.fixture()
def planted():
    return sweep({"x": [1, 2, 3], "y": [0, 1]}, planted_runner)


def test_planted_cliff_is_found(planted):
    edges = detect_knife_edges(planted, [EdgeSpec("waf", factor=2.0)])
    # the (x>=3, y=1) corner cliffs along both axes: stepping x at
    # fixed y=1, and stepping y at fixed x=3 — nothing else flags
    assert len(edges) == 2
    x_edge = next(e for e in edges if e.param == "x")
    assert (x_edge.low_value, x_edge.high_value) == (2, 3)
    assert x_edge.fixed == (("y", 1),)
    assert x_edge.low_metric == 1.0 and x_edge.high_metric == 4.0
    assert x_edge.ratio == 4.0
    y_edge = next(e for e in edges if e.param == "y")
    assert y_edge.fixed == (("x", 3),)


def test_smooth_metric_flags_nothing(planted):
    assert detect_knife_edges(planted, [EdgeSpec("rps", factor=2.0)]) == []


def test_non_adjacent_points_not_compared():
    # x=1 vs x=3 jump 4x, but they are two steps apart; only the
    # adjacent pair (2, 3) may flag
    res = sweep({"x": [1, 3], "y": [1]}, planted_runner)
    edges = detect_knife_edges(res, [EdgeSpec("waf", factor=2.0)])
    assert [(e.low_value, e.high_value) for e in edges] == [(1, 3)]
    # ...unless the axis order says they *are* adjacent, as above; with
    # the full axis declared, the 1->3 pair is not adjacent and stays
    # silent even though both points exist in the result
    edges = detect_knife_edges(res, [EdgeSpec("waf", factor=2.0)],
                               axes={"x": [1, 2, 3], "y": [1]})
    assert edges == []


def test_min_jump_suppresses_noise_floor():
    # 0.001 -> 0.003 is a 3x ratio nobody should page over
    def tiny(params):
        return {"waf_excess": 0.001 if params["x"] == 1 else 0.003}

    res = sweep({"x": [1, 2]}, tiny)
    assert detect_knife_edges(
        res, [EdgeSpec("waf_excess", factor=2.0, min_jump=0.01)]) == []
    assert len(detect_knife_edges(
        res, [EdgeSpec("waf_excess", factor=2.0)])) == 1


def test_zero_to_nonzero_is_infinite_ratio():
    def gc(params):
        return {"gc_copied": 0.0 if params["x"] == 1 else 200.0}

    res = sweep({"x": [1, 2]}, gc)
    (edge,) = detect_knife_edges(
        res, [EdgeSpec("gc_copied", factor=2.0, min_jump=64.0)])
    assert edge.ratio == float("inf")


def test_error_rows_are_skipped():
    def flaky(params):
        if params["x"] == 2:
            raise RuntimeError("infeasible")
        return {"waf": 1.0 if params["x"] == 1 else 4.0}

    res = sweep({"x": [1, 2, 3]}, flaky, on_error="skip")
    # the cliff's neighbour (x=2) errored, so the 1->2 and 2->3 pairs
    # have no mate; nothing to compare, nothing flagged, no crash
    assert detect_knife_edges(res, [EdgeSpec("waf", factor=2.0)]) == []


def test_format_knife_edges():
    edge = KnifeEdge(param="gc_stop_segments", low_value=5, high_value=6,
                     fixed=(("ru_pages", 8),), metric="gc_copied",
                     low_metric=0.0, high_metric=191.0)
    text = format_knife_edges([edge])
    assert "gc_stop_segments" in text and "5->6" in text
    assert "inf" in text
    assert format_knife_edges([]) == "(no knife edges detected)"
    many = format_knife_edges([edge] * 12, limit=10)
    assert "... and 2 more" in many


def test_cluster_grid_refinds_the_gc_stop_cliff():
    """PR 4's cliff, re-derived from the real simulator.

    On the pinned 22MB/8-PID cluster device, ``gc_stop_segments=6``
    makes the collapsed-PID GC copy live pages while ``5`` stays
    copy-free; the comprehensive cluster grid must re-find that edge
    from measurements, not folklore. Run the two points of the real
    grid that straddle it and assert the detector flags the step.
    """
    from functools import partial

    from repro.bench.experiments import cluster_sweep_point, sweep_grids

    grid = sweep_grids("tiny")["cluster"]
    assert "gc_stop_segments" in grid.axes
    assert any(e.metric == "gc_copied" for e in grid.edges)

    fixed = {"ru_pages": 8, "pid_policy": "collapse",
             "wal_policy": "always", "shards": 4, "value_size": 1024}
    res = sweep(
        {**{k: [v] for k, v in fixed.items()},
         "gc_stop_segments": list(grid.axes["gc_stop_segments"])},
        partial(cluster_sweep_point, scale_name="tiny"),
    )
    edges = detect_knife_edges(res, grid.edges)
    gc_edges = [e for e in edges if e.param == "gc_stop_segments"
                and e.metric == "gc_copied"]
    assert gc_edges, f"gc_stop cliff not re-found; rows={res.rows}"
    (edge,) = gc_edges
    assert (edge.low_value, edge.high_value) == (5, 6)
    assert edge.low_metric == 0.0 and edge.high_metric > 0.0
