"""Parameter sweep utility tests."""

import csv

import pytest

from repro.bench.sweep import (
    GridSpec,
    SweepResult,
    run_grid,
    sweep,
    write_csv,
)


def fake_runner(params):
    if params.get("explode"):
        raise RuntimeError("boom")
    return {"score": params["a"] * 10 + params.get("b", 0)}


def test_grid_cartesian_product():
    res = sweep({"a": [1, 2], "b": [0, 5]}, fake_runner)
    assert len(res.rows) == 4
    assert res.column("score") == [10, 15, 20, 25]


def test_best_row():
    res = sweep({"a": [1, 3, 2]}, fake_runner)
    assert res.best("score")["a"] == 3
    assert res.best("score", maximize=False)["a"] == 1


def test_error_skip_records_failure():
    res = sweep({"a": [1], "explode": [False, True]}, fake_runner,
                on_error="skip")
    assert len(res.rows) == 2
    assert "error" in res.rows[1]
    assert "score" not in res.rows[1]


def test_error_raise_propagates():
    with pytest.raises(RuntimeError):
        sweep({"a": [1], "explode": [True]}, fake_runner)


def test_best_skips_error_rows():
    res = sweep({"a": [1, 3], "explode": [False, True]}, fake_runner,
                on_error="skip")
    # errored rows (a=1/3 with explode=True) may not win even though
    # max() over a mixed dict would have raised KeyError before
    assert res.best("score")["a"] == 3
    assert res.best("score")["explode"] is False


def test_best_all_rows_errored():
    res = sweep({"explode": [True, True]}, fake_runner, on_error="skip")
    with pytest.raises(ValueError, match="no successful rows"):
        res.best("score")


def test_parallel_jobs_match_serial():
    grid = {"a": [1, 2, 3], "b": [0, 5], "explode": [False, True]}
    serial = sweep(grid, fake_runner, on_error="skip")
    parallel = sweep(grid, fake_runner, on_error="skip", jobs=3)
    assert parallel.rows == serial.rows  # same content, same order


def test_parallel_raise_names_failed_point():
    with pytest.raises(RuntimeError, match="explode"):
        sweep({"a": [1, 2], "explode": [True]}, fake_runner, jobs=2)


def test_invalid_jobs():
    with pytest.raises(ValueError):
        sweep({"a": [1]}, fake_runner, jobs=0)


def test_invalid_on_error():
    with pytest.raises(ValueError):
        sweep({"a": [1]}, fake_runner, on_error="ignore")


def test_format_and_empty():
    res = sweep({"a": [1]}, fake_runner)
    assert "score" in res.format()
    empty = SweepResult(param_names=[])
    assert empty.format() == "(empty sweep)"
    with pytest.raises(ValueError):
        empty.best("score")


def test_write_csv(tmp_path):
    res = sweep({"a": [1, 2], "explode": [False]}, fake_runner,
                on_error="skip")
    p = tmp_path / "out.csv"
    write_csv(res, p)
    text = p.read_text()
    assert text.splitlines()[0] == "a,explode,score"
    assert "1,False,10" in text
    with pytest.raises(ValueError):
        write_csv(SweepResult(param_names=[]), p)


# --------------------------------------------------------------------------
# mixed success/error row regressions
# --------------------------------------------------------------------------

def mixed_result() -> SweepResult:
    """A sweep whose grid deliberately includes a failing point."""
    return sweep({"a": [1, 2], "explode": [False, True]}, fake_runner,
                 on_error="skip")


def test_mixed_rows_format_does_not_raise():
    # regression: format() took headers from rows[0] and indexed r[h];
    # the first error row raised KeyError and, when rows[0] itself had
    # errored, every measurement column vanished from the table
    res = mixed_result()
    text = res.format()
    assert "score" in text and "error" in text
    assert "boom" in text


def test_mixed_rows_format_error_row_first():
    # worst case of the old bug: rows[0] is the error row, so the old
    # header scrape lost the measurement columns entirely
    res = sweep({"explode": [True, False], "a": [1]}, fake_runner,
                on_error="skip")
    assert "error" in res.rows[0]
    text = res.format()
    assert "score" in text.splitlines()[0]
    assert "error" in text.splitlines()[0]


def test_mixed_rows_headers_union():
    res = mixed_result()
    headers = res.headers()
    assert headers == ["a", "explode", "score", "error"]


def test_mixed_rows_column_blanks():
    # regression: column() indexed r[name] and raised KeyError on the
    # first row missing the metric
    res = mixed_result()
    scores = res.column("score")
    assert scores == [10, None, 20, None]
    errors = res.column("error")
    assert errors[0] is None and "boom" in errors[1]


def test_mixed_rows_write_csv(tmp_path):
    # regression: heterogeneous rows must CSV as a union of keys with
    # blank missing cells — never a ValueError or shifted columns
    res = mixed_result()
    p = tmp_path / "mixed.csv"
    write_csv(res, p)
    with open(p, newline="") as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 4
    assert rows[0]["score"] == "10" and rows[0]["error"] == ""
    assert rows[1]["score"] == "" and "boom" in rows[1]["error"]


def test_mixed_rows_best_and_top():
    res = mixed_result()
    assert res.best("score")["a"] == 2
    top = res.top("score", n=10)
    assert [r["a"] for r in top] == [2, 1]
    assert res.ok_rows() == [res.rows[0], res.rows[2]]


# --------------------------------------------------------------------------
# grid runs + the parameter-keyed cache
# --------------------------------------------------------------------------

def test_run_grid_skips_infeasible_corners():
    grid = GridSpec(name="g", axes={"a": [1, 2], "explode": [False, True]},
                    runner=fake_runner)
    assert grid.size == 4
    res = run_grid(grid, scale=None, cache_dir=None)
    assert len(res.rows) == 4
    assert len(res.ok_rows()) == 2


def test_run_grid_caches_per_point(tmp_path):
    from repro.bench.scales import TEST_SCALE

    calls = []

    def counting_runner(params):
        calls.append(dict(params))
        return {"score": params["a"]}

    grid = GridSpec(name="counted", axes={"a": [1, 2, 3]},
                    runner=counting_runner)
    first = run_grid(grid, TEST_SCALE, cache_dir=tmp_path)
    assert len(calls) == 3
    second = run_grid(grid, TEST_SCALE, cache_dir=tmp_path)
    assert len(calls) == 3  # all three points served from cache
    assert second.rows == first.rows


def test_run_grid_never_caches_failures(tmp_path):
    from repro.bench.scales import TEST_SCALE

    calls = []

    def flaky_runner(params):
        calls.append(dict(params))
        raise RuntimeError("infeasible")

    grid = GridSpec(name="flaky", axes={"a": [1]}, runner=flaky_runner)
    run_grid(grid, TEST_SCALE, cache_dir=tmp_path)
    run_grid(grid, TEST_SCALE, cache_dir=tmp_path)
    assert len(calls) == 2  # failures re-evaluate every time


def test_sweep_with_real_system():
    """End-to-end: sweep value sizes on a tiny SlimIO system."""
    from repro import SystemConfig, build_slimio
    from repro.flash import FlashGeometry, FtlConfig, NandTiming
    from repro.workloads import ClosedLoopWorkload

    cfg = SystemConfig(
        geometry=FlashGeometry(channels=1, dies_per_channel=2,
                               blocks_per_die=48, pages_per_block=16),
        nand=NandTiming(page_read=2e-6, page_program=5e-6,
                        block_erase=20e-6, channel_transfer=0.0),
        ftl=FtlConfig(op_ratio=0.2, gc_trigger_segments=3,
                      gc_stop_segments=4, gc_reserve_segments=2),
        wal_flush_interval=0.01,
    )

    def runner(params):
        system = build_slimio(config=cfg)
        w = ClosedLoopWorkload(clients=4, total_ops=200, key_count=50,
                               value_size=params["value_size"])
        rep = w.run(system)
        system.stop()
        return {"rps": rep.rps, "p999": rep.set_p999}

    res = sweep({"value_size": [256, 2048]}, runner)
    assert len(res.rows) == 2
    assert all(r["rps"] > 0 for r in res.rows)
