"""Auto-tuner tests: descent, caching, and config round-trips."""

from __future__ import annotations

import json

import pytest

from repro.bench.scales import TEST_SCALE, get_scale
from repro.bench.sweep import GridSpec
from repro.bench.tune import (
    TuneResult,
    cluster_config_from_jsonable,
    cluster_config_to_jsonable,
    config_from_jsonable,
    config_to_jsonable,
    coordinate_descent,
    recommendation,
)


def bowl_runner(params):
    """A smooth objective with one optimum at (x=3, y=20)."""
    return {"score": 100.0 - (params["x"] - 3) ** 2
            - (params["y"] - 20) ** 2 / 100.0}


def bowl_grid(**overrides):
    base = dict(name="bowl",
                axes={"x": [1, 2, 3, 4, 5], "y": [0, 10, 20, 30]},
                runner=bowl_runner)
    base.update(overrides)
    return GridSpec(**base)


def test_descent_finds_planted_optimum():
    tr = coordinate_descent(bowl_grid(), TEST_SCALE)
    assert tr.params == {"x": 3, "y": 20}
    assert tr.metrics["score"] == 100.0
    # and it searched, it didn't enumerate: the grid has 20 points
    assert tr.evaluations < 20
    assert tr.trajectory[-1][1] == 100.0


def test_descent_is_deterministic():
    a = coordinate_descent(bowl_grid(), TEST_SCALE)
    b = coordinate_descent(bowl_grid(), TEST_SCALE)
    assert a.params == b.params
    assert a.trajectory == b.trajectory
    assert a.evaluations == b.evaluations


def test_descent_minimize():
    tr = coordinate_descent(bowl_grid(), TEST_SCALE, maximize=False)
    # minimizing the bowl drives to a far corner of the grid
    assert tr.params["x"] in (1, 5) and tr.params["y"] in (0, 30)


def test_descent_objective_override():
    def two_metrics(params):
        return {"score": params["x"], "p999_us": 10.0 * params["x"]}

    grid = bowl_grid(axes={"x": [1, 2, 3]}, runner=two_metrics)
    tr = coordinate_descent(grid, TEST_SCALE, objective="p999_us",
                            maximize=False)
    assert tr.objective == "p999_us"
    assert tr.params == {"x": 1}


def test_descent_steps_around_infeasible_points():
    def holed(params):
        if params["x"] == 3:  # the mid-axis start point
            raise RuntimeError("infeasible")
        return {"score": float(params["x"])}

    grid = bowl_grid(axes={"x": [1, 2, 3, 4, 5]}, runner=holed)
    tr = coordinate_descent(grid, TEST_SCALE)
    assert tr.params == {"x": 5}


def test_descent_all_infeasible_raises():
    def never(params):
        raise RuntimeError("infeasible")

    with pytest.raises(ValueError, match="no feasible point"):
        coordinate_descent(bowl_grid(axes={"x": [1, 2]}, runner=never),
                           TEST_SCALE)


def test_descent_reuses_cache(tmp_path):
    calls = []

    def counting(params):
        calls.append(dict(params))
        return {"score": float(params["x"])}

    grid = bowl_grid(axes={"x": [1, 2, 3]}, runner=counting)
    first = coordinate_descent(grid, TEST_SCALE, cache_dir=tmp_path)
    assert calls
    baseline = len(calls)
    second = coordinate_descent(grid, TEST_SCALE, cache_dir=tmp_path)
    assert len(calls) == baseline  # every evaluation replayed from disk
    assert second.params == first.params


# --------------------------------------------------------------------------
# config round-trips
# --------------------------------------------------------------------------

def test_system_config_json_roundtrip():
    from repro.bench.experiments import single_sweep_config

    scale = get_scale("tiny")
    cfg = single_sweep_config(scale, {"ru_pages": 8, "gc_stop_segments": 5,
                                      "wal_policy": "periodical",
                                      "value_size": 1024})
    blob = json.dumps(config_to_jsonable(cfg), sort_keys=True)
    rebuilt = config_from_jsonable(json.loads(blob))
    assert rebuilt == cfg  # dataclass equality, every nested field


def test_cluster_config_json_roundtrip():
    from repro.bench.experiments import cluster_sweep_config

    scale = get_scale("tiny")
    cc = cluster_sweep_config(scale, {"ru_pages": 4,
                                      "pid_policy": "share-wal",
                                      "gc_stop_segments": 5,
                                      "wal_policy": "always",
                                      "shards": 4, "value_size": 1024})
    blob = json.dumps(cluster_config_to_jsonable(cc), sort_keys=True)
    rebuilt = cluster_config_from_jsonable(json.loads(blob))
    assert rebuilt == cc


def test_recommendation_payload_validates_and_loads():
    from repro.bench.experiments import sweep_grids

    scale = get_scale("tiny")
    grid = sweep_grids("tiny")["cluster"]
    params = {"ru_pages": 4, "pid_policy": "collapse",
              "gc_stop_segments": 5, "wal_policy": "periodical",
              "shards": 4, "value_size": 1024}
    tr = TuneResult(workload="cluster", scale_name="tiny",
                    objective="score", maximize=True, params=params,
                    metrics={"score": 1.0},
                    trajectory=[(params, 1.0)], evaluations=1, passes=1)
    payload = recommendation(grid, scale, tr)
    # the emitted payload is pure JSON and loads back as real configs
    blob = json.loads(json.dumps(payload))
    cfg = config_from_jsonable(blob["system_config"])
    cc = cluster_config_from_jsonable(blob["cluster"])
    assert cc.num_shards == 4
    assert cc.sharing.value == "collapse"
    assert cfg == cc.system
    assert blob["params"] == params


def test_recommendation_requires_config_builder():
    with pytest.raises(ValueError, match="config builder"):
        recommendation(bowl_grid(), TEST_SCALE,
                       TuneResult(workload="bowl", scale_name="test",
                                  objective="score", maximize=True,
                                  params={}, metrics={}))
