"""Op-stream tests: mixes, scenario twists, determinism."""

import pytest

from repro.imdb import ClientOp
from repro.net import MIXES, MixSpec, OpStream


def _flat(stream):
    return [op for i in range(len(stream)) for op in stream.group(i)]


def test_mix_validation():
    with pytest.raises(ValueError):
        MixSpec(read=0.5, update=0.2)  # sums to 0.7
    with pytest.raises(ValueError):
        MixSpec(distribution="pareto")


def test_presets_cover_ycsb_core():
    assert set(MIXES) == {"ycsb_a", "ycsb_b", "ycsb_c", "ycsb_d",
                          "ycsb_e", "ycsb_f"}
    assert MIXES["ycsb_c"].read == 1.0
    assert MIXES["ycsb_d"].distribution == "latest"


def test_groups_are_deterministic():
    a = OpStream(MIXES["ycsb_f"], 500, 200, seed=3)
    b = OpStream(MIXES["ycsb_f"], 500, 200, seed=3)
    assert all(x == y for g1, g2 in zip(a._groups, b._groups)
               for x, y in zip(g1, g2))
    assert len(a._groups) == 500


def test_mix_fractions_realized():
    s = OpStream(MIXES["ycsb_b"], 4_000, 500, seed=11)
    sets = sum(1 for g in s._groups if g[0].op == "SET")
    gets = sum(1 for g in s._groups if g[0].op == "GET")
    assert gets + sets == 4_000
    assert 0.03 < sets / 4_000 < 0.08  # nominal 5%


def test_rmw_groups_are_get_then_set_same_key():
    s = OpStream(MIXES["ycsb_f"], 1_000, 300, seed=5)
    rmw = [g for g in s._groups if len(g) == 2]
    assert rmw, "50% RMW mix produced no RMW groups"
    for get_op, set_op in rmw:
        assert get_op.op == "GET" and set_op.op == "SET"
        assert get_op.key == set_op.key


def test_scans_are_bounded_adjacent_multi_gets():
    s = OpStream(MIXES["ycsb_e"], 1_000, 300, seed=5)
    scans = [g for g in s._groups if len(g) > 1]
    assert scans
    for g in scans:
        assert len(g) <= MIXES["ycsb_e"].scan_max
        assert all(op.op == "GET" for op in g)


def test_inserts_extend_the_keyspace():
    s = OpStream(MIXES["ycsb_d"], 2_000, 100, seed=5)
    keys = {op.key for g in s._groups for op in g if op.op == "SET"}
    from repro.workloads import make_key
    fresh = [k for k in keys if k >= make_key(100)]
    assert fresh, "5% inserts never left the initial keyspace"


def test_hotspot_shift_changes_the_hot_set():
    plain = OpStream(MIXES["ycsb_a"], 2_000, 500, seed=7)
    shifted = OpStream(MIXES["ycsb_a"], 2_000, 500, seed=7,
                       hotspot_shift_at=1_000)
    # identical prefix, different suffix
    assert plain._groups[:1_000] == shifted._groups[:1_000] or all(
        a[0].key == b[0].key
        for a, b in zip(plain._groups[:1_000], shifted._groups[:1_000]))
    tail_same = sum(
        a[0].key == b[0].key
        for a, b in zip(plain._groups[1_000:], shifted._groups[1_000:]))
    assert tail_same < 500  # the hot set moved


def test_ttl_storm_forces_expiring_writes():
    s = OpStream(MixSpec(read=0.0, update=1.0), 300, 100, seed=7,
                 ttl_storm=(100, 200))
    in_storm = [g[0] for g in s._groups[100:200]]
    outside = [g[0] for g in s._groups[:100]]
    assert all(op.ttl is not None for op in in_storm)
    assert all(op.ttl is None for op in outside)


def test_group_wraps_modulo():
    s = OpStream(MIXES["ycsb_c"], 10, 50, seed=1)
    assert s.group(10) == s.group(0)


def test_with_count_and_scaled_regenerate():
    s = OpStream(MIXES["ycsb_a"], 100, 50, seed=1)
    assert len(s.with_count(250)) == 250
    t = s.scaled(ttl_fraction=1.0, ttl=0.5)
    writes = [g[0] for g in t._groups if g[0].op == "SET"]
    assert writes and all(op.ttl == 0.5 for op in writes)


def test_ops_are_client_ops():
    s = OpStream(MIXES["ycsb_a"], 50, 20, seed=1, value_size=64)
    for g in s._groups:
        for op in g:
            assert isinstance(op, ClientOp)
            if op.op == "SET":
                assert len(op.value) == 64
