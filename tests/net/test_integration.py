"""The front end against the real stacks it was built to serve.

Two wirings the unit tests' fake backends can't cover: the cluster
router (slot-hash fan-out behind one listener) and a power cut landing
while connections still hold queued commands (every acked write must
be recoverable — Always logging makes ack mean durable).
"""

from repro.cluster import ClusterConfig, build_cluster
from repro.core import SlimIOSystem, SystemConfig
from repro.persist import LoggingPolicy, SnapshotKind
from repro.faults import FaultyDevice, PowerCutSpec
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ClientOp
from repro.net import (
    MIXES,
    NetConfig,
    NetFrontend,
    OpStream,
    PoissonArrivals,
    run_open_loop,
)
from repro.nvme import NvmeDevice
from repro.sim import Environment
from repro.workloads import make_key, make_value

SMALL_SYSTEM = SystemConfig(
    geometry=FlashGeometry(channels=1, dies_per_channel=2,
                           blocks_per_die=64, pages_per_block=16),
    nand=NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                    channel_transfer=0.0),
    ftl=FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                  gc_reserve_segments=2),
    wal_flush_interval=0.01,
    fs_extent_pages=16,
)


def test_cluster_router_serves_open_loop_traffic():
    """One listener, N shards: the router duck-types Server.execute,
    so the front end drives a whole cluster unchanged."""
    cluster = build_cluster(config=ClusterConfig(
        num_shards=2, design="slimio", system=SMALL_SYSTEM))
    env = cluster.env
    fe = NetFrontend(env, cluster.router, NetConfig(pipeline_depth=4))
    times = PoissonArrivals(5_000, seed=3).times(0.02, t0=env.now)
    stream = OpStream(MIXES["ycsb_a"], len(times), 200, value_size=256,
                      seed=5)
    run_open_loop(env, fe, stream, times, clients=4, horizon=0.2)
    assert fe.issued > 0
    assert fe.completed == fe.issued
    assert sum(cluster.router.routed) == fe.completed
    # CRC16 slot hashing spreads the keyspace over both shards
    assert all(n > 0 for n in cluster.router.routed)
    cluster.stop()


def _recover(config, image):
    env = Environment()
    device = NvmeDevice(env, config.geometry, config.nand, config.ftl,
                        fdp=config.fdp, num_pids=8)
    device.load_image(image)
    system = SlimIOSystem(env, config, device=device)
    proc = env.process(system.recover(SnapshotKind.WAL_TRIGGERED),
                       name="recovery")
    return env.run(until=proc)


def test_power_cut_with_queued_connections_keeps_acked_prefix():
    """Cut power while per-connection queues are non-empty: recovery
    must surface every acked SET and invent nothing."""
    from dataclasses import replace

    config = replace(SMALL_SYSTEM, policy=LoggingPolicy.ALWAYS)
    env = Environment()
    device = NvmeDevice(env, config.geometry, config.nand, config.ftl,
                        fdp=config.fdp, num_pids=8)
    faulty = FaultyDevice(device, power=PowerCutSpec(at_page_write=40))
    system = SlimIOSystem(env, config, device=faulty)

    acked: list[ClientOp] = []

    class RecordingBackend:
        """Ack = server.execute returned; under Always logging that
        means the WAL write completed on the (not yet dead) device."""

        def execute(self, op):
            result = yield from system.server.execute(op)
            acked.append(op)
            return result

    fe = NetFrontend(env, RecordingBackend(),
                     NetConfig(pipeline_depth=8, conn_queue=8))
    conns = []

    def opener():
        for _ in range(4):
            conns.append((yield from fe.listener.connect()))

    env.run(until=env.process(opener(), name="opener"))

    def client(conn, base):
        for i in range(24):
            key = make_key(base + i)
            yield from conn.send(
                (ClientOp("SET", key, make_value(key, 256)),), env.now)
        yield from conn.drain()

    for n, conn in enumerate(conns):
        env.process(client(conn, n * 24), name=f"cl{n}")
    env.run(until=1.0)  # the cut leaves hung dispatchers; just move on

    issued = fe.issued
    assert faulty.counters["power_cuts"] == 1
    assert 0 < len(acked) < issued  # queued commands died with the cut

    result = _recover(config, faulty.inner.image())
    recovered = dict(result.data)
    sent = {}
    for n in range(4):
        for i in range(24):
            key = make_key(n * 24 + i)
            sent[key] = make_value(key, 256)
    # acked ⊆ recovered: nothing the server acknowledged may vanish
    for op in acked:
        assert recovered.get(op.key) == op.value
    # recovered ⊆ issued: recovery must not invent keys or values
    for key, value in recovered.items():
        assert sent.get(key) == value
