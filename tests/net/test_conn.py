"""Connection state-machine tests against a controllable fake backend."""

import pytest

from repro.imdb import ClientOp
from repro.imdb.resp import decode
from repro.net import NetConfig, NetFrontend
from repro.sim import Environment


class FakeBackend:
    """Fixed service time per op; remembers what it executed."""

    def __init__(self, env, service=50e-6):
        self.env = env
        self.service = service
        self.executed: list[ClientOp] = []

    def execute(self, op):
        yield self.env.timeout(self.service)
        self.executed.append(op)
        if op.op == "GET":
            return b"value-of-" + op.key
        return True


def _connect(env, fe):
    box = {}

    def go():
        box["conn"] = yield from fe.listener.connect()

    env.run(until=env.process(go(), name="connect"))
    return box["conn"]


def _run_groups(env, conn, groups):
    def client():
        for g in groups:
            yield from conn.send(g, env.now)
        yield from conn.drain()
        yield from conn.close()

    env.run(until=env.process(client(), name="client"))
    env.run(until=env.now + 0.05)


def test_commands_flow_end_to_end():
    env = Environment()
    be = FakeBackend(env)
    fe = NetFrontend(env, be, NetConfig(capture_replies=True))
    conn = _connect(env, fe)
    groups = [(ClientOp("SET", b"k1", b"v1"),),
              (ClientOp("GET", b"k1"),),
              (ClientOp("DEL", b"k1"),)]
    _run_groups(env, conn, groups)
    assert [op.op for op in be.executed] == ["SET", "GET", "DEL"]
    assert fe.completed == 3
    assert decode(conn.replies[0]) == "OK"
    assert decode(conn.replies[1]) == b"value-of-k1"
    assert decode(conn.replies[2]) == 1


def test_pipeline_window_caps_outstanding():
    env = Environment()
    be = FakeBackend(env, service=1e-3)
    fe = NetFrontend(env, be, NetConfig(pipeline_depth=2, conn_queue=64,
                                        max_inflight=64))
    conn = _connect(env, fe)
    seen = []

    def client():
        for i in range(6):
            yield from conn.send((ClientOp("GET", b"%d" % i),), env.now)
            seen.append(conn._outstanding)
        yield from conn.drain()
        yield from conn.close()

    env.run(until=env.process(client(), name="client"))
    assert max(seen) <= 2
    assert fe.completed == 6


def test_fragmented_frames_reassemble():
    """A 4 KiB SET crosses many 512 B fragments; exactly one command
    must come out the other side."""
    env = Environment()
    be = FakeBackend(env)
    fe = NetFrontend(env, be, NetConfig(fragment_bytes=512))
    conn = _connect(env, fe)
    _run_groups(env, conn, [(ClientOp("SET", b"big", b"x" * 4096),)])
    assert len(be.executed) == 1
    assert be.executed[0].value == b"x" * 4096


def test_slow_client_pays_bandwidth():
    def run(slow_every):
        env = Environment()
        be = FakeBackend(env, service=1e-6)
        fe = NetFrontend(env, be, NetConfig(slow_every=slow_every,
                                            slow_factor=0.01))
        conn = _connect(env, fe)
        assert conn.slow == (slow_every == 1)
        t0 = env.now
        _run_groups(env, conn, [(ClientOp("SET", b"k", b"v" * 2048),)])
        done = [c for c in fe.completions]
        return done[0][1] - t0

    assert run(1) > 50 * run(0)


def test_protocol_error_drops_connection():
    env = Environment()
    be = FakeBackend(env)
    fe = NetFrontend(env, be, NetConfig())
    conn = _connect(env, fe)

    def client():
        yield conn.inbox.put(b":not-an-int\r\n")

    env.run(until=env.process(client(), name="client"))
    env.run(until=env.now + 0.01)
    assert conn.dropped and conn.closed
    assert fe.dropped_conns == 1


def test_unsupported_command_drops_connection():
    env = Environment()
    be = FakeBackend(env)
    fe = NetFrontend(env, be, NetConfig())
    conn = _connect(env, fe)

    def client():
        yield conn.inbox.put(b"*1\r\n$8\r\nFLUSHALL\r\n")

    env.run(until=env.process(client(), name="client"))
    env.run(until=env.now + 0.01)
    assert conn.dropped
    assert fe.dropped_conns == 1


def test_send_on_closed_connection_counts_unsent():
    env = Environment()
    be = FakeBackend(env)
    fe = NetFrontend(env, be, NetConfig())
    conn = _connect(env, fe)

    def client():
        yield from conn.close()
        yield env.timeout(1e-3)
        sent = yield from conn.send((ClientOp("GET", b"k"),), env.now)
        assert sent == 0

    env.run(until=env.process(client(), name="client"))
    assert fe.unsent == 1
    assert fe.completed == 0


def test_graceful_close_drains_queued_commands():
    """close() after sends: everything already queued still executes."""
    env = Environment()
    be = FakeBackend(env, service=200e-6)
    fe = NetFrontend(env, be, NetConfig(pipeline_depth=8))
    conn = _connect(env, fe)
    groups = [(ClientOp("SET", b"%d" % i, b"v"),) for i in range(5)]
    _run_groups(env, conn, groups)
    assert fe.completed == 5
    assert not conn.dropped


def test_config_validation():
    with pytest.raises(ValueError):
        NetConfig(conn_queue=0)
    with pytest.raises(ValueError):
        NetConfig(pipeline_depth=0)
    with pytest.raises(ValueError):
        NetConfig(slow_factor=0.0)
    with pytest.raises(ValueError):
        NetConfig(max_inflight=0)


def test_net_spans_cover_queue_residency():
    from repro.obs.trace import RequestTracer

    env = Environment()
    be = FakeBackend(env, service=100e-6)
    tracer = RequestTracer(env, sample_every=1)
    fe = NetFrontend(env, be, NetConfig(pipeline_depth=8), rtrace=tracer)
    conn = _connect(env, fe)
    groups = [(ClientOp("SET", b"%d" % i, b"v"),) for i in range(4)]
    _run_groups(env, conn, groups)
    kept = list(tracer.kept.values())
    assert kept
    roots = [ctx.root for ctx in kept]
    assert all(r is not None and r.layer == "net" for r in roots)
    # later requests waited behind the first: queue spans must exist
    names = {s.name for ctx in kept for s in ctx.spans}
    assert "conn_queue" in names or "client_backlog" in names
    assert "reply_write" in names
