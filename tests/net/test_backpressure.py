"""Backpressure-policy invariants under a burst.

One slow backend, a burst of commands far beyond the queue bound, all
three policies: each must hold the per-connection queue bound and the
server-wide admission limit, and each must account for every command
(completed + shed + dropped + unsent = issued intent).
"""

import pytest

from repro.imdb import ClientOp
from repro.imdb.resp import RespError, decode
from repro.net import BackpressurePolicy, NetConfig, NetFrontend
from repro.sim import Environment

BURST = 64
QUEUE = 4
INFLIGHT = 8


class SlowBackend:
    def __init__(self, env, service=500e-6):
        self.env = env
        self.service = service
        self.peak_concurrent = 0
        self._running = 0

    def execute(self, op):
        self._running += 1
        self.peak_concurrent = max(self.peak_concurrent, self._running)
        yield self.env.timeout(self.service)
        self._running -= 1
        return True if op.op != "GET" else b"v"


def _burst(policy, clients=4):
    """Fire BURST commands spread over `clients` connections at t~0."""
    env = Environment()
    be = SlowBackend(env)
    cfg = NetConfig(policy=BackpressurePolicy(policy), conn_queue=QUEUE,
                    max_inflight=INFLIGHT, pipeline_depth=BURST,
                    capture_replies=True)
    fe = NetFrontend(env, be, cfg)
    conns = []

    def opener():
        for _ in range(clients):
            c = yield from fe.listener.connect()
            conns.append(c)

    env.run(until=env.process(opener(), name="opener"))

    def client(c, base):
        for i in range(BURST // clients):
            yield from c.send(
                (ClientOp("SET", b"%03d" % (base + i), b"v" * 64),),
                env.now)
        yield from c.drain()

    for n, c in enumerate(conns):
        env.process(client(c, n * (BURST // clients)), name=f"cl{n}")
    env.run(until=1.0)
    return fe, conns


@pytest.mark.parametrize("policy", ["block", "shed", "drop"])
def test_queue_bound_holds_under_burst(policy):
    fe, conns = _burst(policy)
    assert fe.max_conn_queue <= QUEUE
    assert fe.admission.peak <= INFLIGHT
    assert fe.admission.inflight == 0  # every slot returned


def test_block_completes_everything():
    fe, _ = _burst("block")
    st = fe.stats()
    assert st["completed"] == BURST
    assert st["shed"] == 0 and st["dropped_cmds"] == 0


def test_shed_returns_wellformed_busy_errors():
    fe, conns = _burst("shed")
    st = fe.stats()
    assert st["shed"] > 0
    assert st["completed"] + st["shed"] == st["issued"]
    assert st["dropped_conns"] == 0  # shedding never kills connections
    busy = [r for c in conns for r in c.replies
            if isinstance(decode(r), RespError)]
    assert len(busy) == st["shed"]
    for r in busy:
        err = decode(r)
        assert err.message.startswith("BUSY")
        assert r.startswith(b"-") and r.endswith(b"\r\n")


def test_drop_closes_connections_and_accounts_commands():
    fe, conns = _burst("drop")
    st = fe.stats()
    assert st["dropped_conns"] > 0
    assert any(c.dropped for c in conns)
    # every wire command is accounted for exactly once; commands the
    # clients still intended after the close are counted as unsent
    assert st["completed"] + st["dropped_cmds"] == st["issued"]
    assert st["issued"] + st["unsent"] == BURST


def test_block_stalls_the_reader_not_the_server():
    """BLOCK must bound what the backend ever sees concurrently."""
    env = Environment()
    be = SlowBackend(env)
    cfg = NetConfig(policy=BackpressurePolicy.BLOCK, conn_queue=QUEUE,
                    max_inflight=INFLIGHT, pipeline_depth=BURST)
    fe = NetFrontend(env, be, cfg)

    def run():
        c = yield from fe.listener.connect()
        for i in range(32):
            yield from c.send((ClientOp("SET", b"%d" % i, b"v"),), env.now)
        yield from c.drain()

    env.run(until=env.process(run(), name="run"))
    assert be.peak_concurrent <= INFLIGHT


@pytest.mark.parametrize("policy", ["block", "shed", "drop"])
def test_burst_is_deterministic(policy):
    def once():
        fe, _ = _burst(policy)
        st = fe.stats()
        return tuple(sorted(st.items()))

    assert once() == once()
