"""Arrival-process tests: determinism, mean rates, burst structure."""

import numpy as np
import pytest

from repro.net import DiurnalArrivals, MmppArrivals, PoissonArrivals

PROCS = [
    PoissonArrivals(5_000, seed=3),
    MmppArrivals(5_000, burst=4.0, dwell_calm=0.02, dwell_burst=0.005,
                 seed=3),
    DiurnalArrivals(5_000, amp=0.6, period=0.5, seed=3),
]


@pytest.mark.parametrize("proc", PROCS, ids=lambda p: type(p).__name__)
def test_schedule_is_deterministic(proc):
    a = proc.times(0.5)
    b = proc.times(0.5)
    assert np.array_equal(a, b)


@pytest.mark.parametrize("proc", PROCS, ids=lambda p: type(p).__name__)
def test_times_sorted_and_in_window(proc):
    t = proc.times(0.5, t0=2.0)
    assert np.all(np.diff(t) >= 0)
    assert t[0] >= 2.0
    assert t[-1] < 2.5


@pytest.mark.parametrize("proc", PROCS, ids=lambda p: type(p).__name__)
def test_mean_rate_close_to_nominal(proc):
    # 0.5s at 5k/s = 2500 expected; allow generous sampling noise
    n = len(proc.times(0.5))
    assert 0.75 * 2500 < n < 1.25 * 2500


@pytest.mark.parametrize("proc", PROCS, ids=lambda p: type(p).__name__)
def test_with_rate_rescales(proc):
    doubled = proc.with_rate(10_000)
    assert doubled.rate == 10_000
    n1 = len(proc.times(0.5))
    n2 = len(doubled.times(0.5))
    assert 1.5 * n1 < n2 < 2.5 * n1


def test_mmpp_is_burstier_than_poisson():
    """Same mean rate, but the MMPP packs arrivals into burst dwells:
    its per-bin count variance must exceed the Poisson's."""
    def bin_var(times, width=0.005, duration=1.0):
        counts, _ = np.histogram(times, bins=int(duration / width),
                                 range=(0.0, duration))
        return counts.var()

    po = PoissonArrivals(5_000, seed=9).times(1.0)
    mm = MmppArrivals(5_000, burst=6.0, dwell_calm=0.05,
                      dwell_burst=0.01, seed=9).times(1.0)
    assert bin_var(mm) > 2.0 * bin_var(po)


def test_diurnal_trough_quieter_than_peak():
    d = DiurnalArrivals(5_000, amp=0.8, period=1.0, seed=9)
    t = d.times(1.0)
    # period 1.0 starting in the trough: first quarter ≪ middle half
    trough = np.sum(t < 0.25)
    peak = np.sum((t >= 0.25) & (t < 0.75))
    assert peak > 2.0 * trough


def test_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0)
    with pytest.raises(ValueError):
        MmppArrivals(100, burst=0.5)
    with pytest.raises(ValueError):
        MmppArrivals(100, dwell_calm=0.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(100, amp=1.5)
    with pytest.raises(ValueError):
        DiurnalArrivals(100, period=0.0)


def test_mmpp_mean_rate_compensates_for_bursts():
    """rate_calm is solved so the stationary mean matches `rate`."""
    m = MmppArrivals(10_000, burst=8.0, dwell_calm=0.01,
                     dwell_burst=0.01, seed=5)
    assert m.rate_calm < 10_000 < m.rate_burst
    n = len(m.times(2.0))
    assert 0.8 * 20_000 < n < 1.2 * 20_000
