"""Listener and admission-controller tests."""

from repro.imdb import ClientOp
from repro.net import NetConfig, NetFrontend
from repro.net.frontend import AdmissionController
from repro.sim import Environment


class NullBackend:
    def __init__(self, env):
        self.env = env

    def execute(self, op):
        yield self.env.timeout(1e-6)
        return True


def test_admission_try_acquire_bounds_inflight():
    env = Environment()
    a = AdmissionController(env, limit=2)
    assert a.try_acquire() and a.try_acquire()
    assert not a.try_acquire()
    assert a.rejections == 1
    a.release()
    assert a.try_acquire()
    assert a.peak == 2


def test_admission_blocking_acquire_wakes_in_turn():
    env = Environment()
    a = AdmissionController(env, limit=1)
    order = []

    def holder():
        yield from a.acquire()
        order.append("holder")
        yield env.timeout(1e-3)
        a.release()

    def waiter(name):
        yield from a.acquire()
        order.append(name)
        yield env.timeout(1e-3)
        a.release()

    env.process(holder(), name="holder")
    env.process(waiter("w1"), name="w1")
    env.process(waiter("w2"), name="w2")
    env.run(until=0.1)
    assert order == ["holder", "w1", "w2"]
    assert a.inflight == 0


def test_backlog_refuses_when_full():
    env = Environment()
    be = NullBackend(env)
    # accept is slow, backlog tiny: a connect storm must see refusals
    fe = NetFrontend(env, be, NetConfig(accept_queue=2, accept_cost=1e-3))
    got = []

    def one():
        c = yield from fe.listener.connect()
        got.append(c)

    for i in range(8):  # concurrent storm: all hit the backlog at t=0
        env.process(one(), name=f"storm{i}")
    env.run(until=0.1)
    refused = sum(1 for c in got if c is None)
    assert refused > 0
    assert fe.listener.refused == refused
    assert fe.listener.accepted == 8 - refused


def test_accepts_are_serialized_by_accept_cost():
    env = Environment()
    be = NullBackend(env)
    fe = NetFrontend(env, be, NetConfig(accept_cost=1e-3, accept_queue=64))
    stamps = []

    def one():
        c = yield from fe.listener.connect()
        stamps.append((env.now, c))

    for i in range(3):
        env.process(one(), name=f"c{i}")
    env.run(until=0.1)
    times = sorted(t for t, _ in stamps)
    assert times[1] - times[0] >= 1e-3 - 1e-9
    assert times[2] - times[1] >= 1e-3 - 1e-9


def test_slow_every_marks_every_nth_connection():
    env = Environment()
    be = NullBackend(env)
    fe = NetFrontend(env, be, NetConfig(slow_every=3))
    conns = []

    def opener():
        for _ in range(6):
            conns.append((yield from fe.listener.connect()))

    env.run(until=env.process(opener(), name="opener"))
    assert [c.slow for c in conns] == [False, False, True,
                                       False, False, True]


def test_stats_keys_stable():
    env = Environment()
    fe = NetFrontend(env, NullBackend(env))
    assert set(fe.stats()) == {
        "issued", "completed", "shed", "dropped_conns", "dropped_cmds",
        "unsent", "refused", "accepted", "peak_inflight",
        "admission_rejections", "max_conn_queue",
    }


def test_close_stops_accepting():
    env = Environment()
    be = NullBackend(env)
    fe = NetFrontend(env, be, NetConfig())

    def run():
        c = yield from fe.listener.connect()
        yield from c.send((ClientOp("SET", b"k", b"v"),), env.now)
        yield from c.drain()

    env.run(until=env.process(run(), name="run"))
    fe.close()
    env.run(until=env.now + 0.01)
    assert fe.completed == 1
