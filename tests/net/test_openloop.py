"""Open-loop driver tests: schedules, knee detection, no omission."""

import numpy as np
import pytest

from repro.net import (
    MIXES,
    NetConfig,
    NetFrontend,
    OpenLoopPoint,
    OpStream,
    PoissonArrivals,
    curve_csv,
    detect_knee,
    run_open_loop,
    summarize_point,
)
from repro.sim import Environment


class FixedBackend:
    def __init__(self, env, service=20e-6):
        self.env = env
        self.service = service

    def execute(self, op):
        yield self.env.timeout(self.service)
        return True if op.op != "GET" else b"v"


def _drive(rate, service=20e-6, duration=0.02, clients=8, **cfg_kw):
    env = Environment()
    be = FixedBackend(env, service=service)
    fe = NetFrontend(env, be, NetConfig(pipeline_depth=8, **cfg_kw))
    times = PoissonArrivals(rate, seed=3).times(duration, t0=env.now)
    stream = OpStream(MIXES["ycsb_a"], len(times), 200, value_size=64,
                      seed=5)
    run_open_loop(env, fe, stream, times, clients=clients,
                  horizon=duration * 2 + 0.05)
    return summarize_point(fe, rate, len(times), duration)


def test_underload_completes_every_arrival():
    p = _drive(5_000)
    assert p.completed == p.issued
    assert p.completed >= p.arrivals  # RMW groups send 2 commands
    assert p.p999 < 1e-3


def test_latency_includes_queueing_no_coordinated_omission():
    """Offered load ~3x capacity: a closed-loop harness would report
    ~service-time latencies; the open loop must charge the backlog."""
    slow = _drive(15_000, service=200e-6, clients=2)
    assert slow.p999 > 10 * 200e-6
    assert slow.mean > 2 * 200e-6


def test_run_is_deterministic():
    a = _drive(20_000)
    b = _drive(20_000)
    assert a == b


def test_connection_churn_reconnects():
    env = Environment()
    be = FixedBackend(env)
    fe = NetFrontend(env, be, NetConfig(pipeline_depth=8))
    times = PoissonArrivals(10_000, seed=3).times(0.02, t0=env.now)
    stream = OpStream(MIXES["ycsb_c"], len(times), 100, seed=5)
    run_open_loop(env, fe, stream, times, clients=4, horizon=0.1,
                  conn_lifetime=10)
    assert fe.listener.accepted > 4  # every client reconnected
    assert fe.completed == fe.issued


def test_summarize_point_phase_split():
    env = Environment()
    be = FixedBackend(env)
    fe = NetFrontend(env, be, NetConfig())
    # synthetic completions: slow ones inside the snapshot window
    for i in range(100):
        t = i * 1e-3
        fe.completions.append((t, t + (5e-3 if 0.02 <= t <= 0.04
                                       else 1e-4), "SET"))
    fe.issued = 100
    p = summarize_point(fe, 1_000, 100, 0.1,
                        snapshot_windows=[(0.02, 0.05)])
    assert p.completed_wal_snapshot > 0
    assert p.completed_wal_only + p.completed_wal_snapshot == 100
    assert p.p999_wal_snapshot > p.p999_wal_only


def _pt(offered, p999):
    return OpenLoopPoint(
        offered=offered, arrivals=100, issued=100, completed=100,
        shed=0, dropped_cmds=0, dropped_conns=0, refused=0,
        goodput=offered, mean=p999 / 2, p50=p999 / 4, p99=p999 * 0.9,
        p999=p999, p999_wal_only=p999, p999_wal_snapshot=p999,
        completed_wal_only=100, completed_wal_snapshot=0,
        peak_inflight=1, max_conn_queue=1)


def test_detect_knee_finds_first_blowup():
    pts = [_pt(10, 1e-4), _pt(20, 1.2e-4), _pt(40, 9e-4), _pt(80, 9e-3)]
    assert detect_knee(pts, factor=4.0) == 40


def test_detect_knee_flat_curve_is_none():
    pts = [_pt(10, 1e-4), _pt(20, 1.1e-4), _pt(40, 1.2e-4)]
    assert detect_knee(pts, factor=4.0) is None


def test_detect_knee_needs_two_points():
    assert detect_knee([_pt(10, 1e-4)]) is None


def test_curve_csv_round_trips():
    pts = [_pt(10, 1e-4), _pt(20, 2e-4)]
    csv = curve_csv(pts)
    lines = csv.strip().split("\n")
    assert len(lines) == 3
    header = lines[0].split(",")
    assert header[0] == "offered" and "p999" in header
    row = dict(zip(header, lines[1].split(",")))
    assert float(row["offered"]) == 10
    assert float(row["p999"]) == pytest.approx(1e-4)


def test_clients_validation():
    env = Environment()
    fe = NetFrontend(env, FixedBackend(env))
    with pytest.raises(ValueError):
        run_open_loop(env, fe, OpStream(MIXES["ycsb_c"], 1, 10),
                      np.zeros(1), clients=0, horizon=0.1)
