"""Tracer tests."""

import pytest

from repro.sim import Environment
from repro.sim.tracing import Tracer


def test_emit_and_filter():
    env = Environment()
    tr = Tracer(env)
    tr.emit("ftl", "gc-start")

    def proc():
        yield env.timeout(1.5)
        tr.emit("wal", "flush", 4096)

    env.run(until=env.process(proc()))
    assert len(tr) == 2
    assert tr.components() == {"ftl", "wal"}
    assert [r.event for r in tr.records("wal")] == ["flush"]
    assert tr.records(since=1.0)[0].component == "wal"


def test_disabled_tracer_is_free():
    env = Environment()
    tr = Tracer(env, enabled=False)
    tr.emit("x", "y")
    assert len(tr) == 0


def test_capacity_evicts_oldest_and_counts():
    env = Environment()
    tr = Tracer(env, capacity=2)
    for i in range(5):
        tr.emit("c", f"e{i}")
    assert len(tr) == 2
    assert tr.dropped == 3
    # ring semantics: the *end* of the run survives, not the start
    assert [r.event for r in tr.records()] == ["e3", "e4"]


def test_unbounded_mode_keeps_everything():
    env = Environment()
    tr = Tracer(env)
    for i in range(100):
        tr.emit("c", f"e{i}")
    assert len(tr) == 100
    assert tr.dropped == 0
    assert tr.records()[0].event == "e0"
    assert tr.records()[-1].event == "e99"


def test_ring_preserves_chronology_after_wrap():
    env = Environment()
    tr = Tracer(env, capacity=3)

    def proc():
        for i in range(6):
            tr.emit("c", f"e{i}")
            yield env.timeout(1.0)

    env.run(until=env.process(proc()))
    recs = tr.records()
    assert [r.event for r in recs] == ["e3", "e4", "e5"]
    assert [r.t for r in recs] == [3.0, 4.0, 5.0]
    assert tr.dropped == 3
    # filters still apply over the surviving window
    assert tr.records(since=4.5)[0].event == "e5"


def test_render_and_clear():
    env = Environment()
    tr = Tracer(env)
    tr.emit("dev", "write", "lba=3")
    out = tr.render()
    assert "dev" in out and "lba=3" in out
    assert tr.render(last=1).count("\n") == 0
    tr.clear()
    assert len(tr) == 0 and tr.dropped == 0


def test_invalid_capacity():
    with pytest.raises(ValueError):
        Tracer(Environment(), capacity=0)
