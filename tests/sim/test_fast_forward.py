"""Unit tests for the quiescence fast-forward lane (engine level).

The experiment-level byte-identity proof lives in
tests/bench/test_determinism.py; these tests pin the primitive
contracts: when ``ff_advance`` may absorb, how ``idle_wait`` collapses
poll ticks, and that absorbed events keep the logical event total
(``events_processed + events_absorbed``) lane-invariant.
"""

from __future__ import annotations

import pytest

from repro.kernel.accounting import CpuAccount
from repro.sim import Environment


def test_ff_advance_absorbs_pure_delay():
    env = Environment(fast_forward=True)
    seen = []

    def proc():
        assert env.ff_advance(5.0)  # quiet heap: absorbed inline
        seen.append(env.now)
        yield env.timeout(1.0)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [5.0, 6.0]
    assert env.events_absorbed == 1


def test_ff_advance_refuses_earlier_or_equal_event():
    env = Environment(fast_forward=True)

    def other():
        yield env.timeout(3.0)

    def proc():
        assert not env.ff_advance(5.0)  # other's timeout at 3.0 is due
        assert not env.ff_advance(3.0)  # ties lose: dispatch wins
        assert env.ff_advance(2.0)      # strictly before the horizon
        assert env.now == 2.0
        yield env.timeout(0.5)

    env.process(other())
    env.process(proc())
    env.run()
    assert env.events_absorbed == 1


def test_ff_advance_respects_run_until_bound():
    env = Environment(fast_forward=True)

    def proc():
        assert not env.ff_advance(5.0)  # would overrun run(until=4)
        assert env.ff_advance(3.0)
        yield env.timeout(0.25)

    env.process(proc())
    env.run(until=4.0)
    assert env.now == 4.0


def test_ff_disabled_never_absorbs():
    env = Environment()  # fast_forward defaults off at engine level

    def proc():
        assert not env.ff_advance(5.0)
        yield env.timeout(1.0)

    env.process(proc())
    env.run()
    assert env.events_absorbed == 0 and env.now == 1.0


def _poll_run(fast_forward: bool) -> tuple[float, list[float], int]:
    """A poll loop + a state change at t=0.0105: returns (exit time,
    wake instants, logical event total)."""
    env = Environment(fast_forward=fast_forward)
    state = {"done": False}
    wakes = []

    def setter():
        yield env.timeout(0.0105)
        state["done"] = True

    def poller():
        while not state["done"]:
            yield env.idle_wait(1e-3)
            wakes.append(env.now)

    env.process(setter())
    env.process(poller())
    env.run()
    return env.now, wakes, env.events_processed + env.events_absorbed


def test_idle_wait_matches_tick_loop_exactly():
    t_ff, wakes_ff, total_ff = _poll_run(True)
    t_cl, wakes_cl, total_cl = _poll_run(False)
    # same exit instant, bit-for-bit (wake instants accumulate by
    # repeated addition in both lanes)
    assert t_ff == t_cl
    assert total_ff == total_cl
    # the collapsed lane realizes fewer wakes but its last instants
    # line up with the classic lane's tail
    assert wakes_ff[-1] == wakes_cl[-1]
    assert len(wakes_ff) <= len(wakes_cl)


def test_charge_absorbs_when_quiescent():
    env = Environment(fast_forward=True)
    acct = CpuAccount(env, "test")
    seen = []

    def proc():
        ev = acct.charge("cpu", 2.5)
        if ev is not None:  # pragma: no cover - absorbed in this setup
            yield ev
        seen.append(env.now)
        yield env.timeout(0.1)

    env.process(proc())
    env.run()
    assert seen == [2.5]
    assert env.events_absorbed == 1
    assert acct.total_charged() == pytest.approx(2.5)


def test_charge_dispatches_when_contended():
    env = Environment(fast_forward=True)

    def other():
        yield env.timeout(1.0)

    acct = CpuAccount(env, "test")
    seen = []

    def proc():
        ev = acct.charge("cpu", 2.5)
        if ev is not None:
            yield ev
        seen.append(env.now)

    env.process(other())
    env.process(proc())
    env.run()
    assert seen == [2.5]
    assert env.events_absorbed == 0  # real timeout, dispatched
