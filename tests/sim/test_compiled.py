"""The optional compiled engine must degrade cleanly.

This container has no mypyc toolchain, so these tests pin the
*fallback* contract: builds report the missing compiler without
breaking anything, the backend introspection tells the truth, and the
``SLIMIO_NO_COMPILED`` escape hatch pins the pure source. When a
toolchain IS present (CI's compiled matrix job), the build test runs
for real and the tier-1 sim suite is re-run against the artifact.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim import compiled

SRC = Path(__file__).resolve().parents[2] / "src"


def test_backend_reports_loaded_engine():
    assert compiled.engine_backend() in ("pure-python", "compiled")


def test_build_without_compiler_raises_cleanly():
    if compiled.compiler_available():
        pytest.skip("mypyc present; fallback path not reachable")
    with pytest.raises(compiled.CompilerUnavailable):
        compiled.build()
    # the failure changed nothing: engine still imports, no artifacts
    assert compiled.artifacts() == []
    assert compiled.engine_backend() == "pure-python"


def test_cli_build_if_available_exits_zero_without_compiler():
    if compiled.compiler_available():
        pytest.skip("mypyc present; fallback path not reachable")
    assert compiled.main(["build", "--if-available"]) == 0
    assert compiled.main(["build"]) == 1
    assert compiled.main(["status"]) == 0
    assert compiled.main(["clean"]) == 0


def test_no_compiled_env_var_pins_pure_source():
    env = {**os.environ, "SLIMIO_NO_COMPILED": "1",
           "PYTHONPATH": str(SRC)}
    out = subprocess.run(
        [sys.executable, "-c",
         "import repro.sim, repro.sim.engine as e; print(e.__file__)"],
        env=env, capture_output=True, text=True, check=True,
    ).stdout.strip()
    assert out.endswith("engine.py")


@pytest.mark.skipif(not compiled.compiler_available(),
                    reason="mypyc toolchain not installed")
def test_compiled_build_produces_importable_artifact(tmp_path):
    artifact = compiled.build()
    try:
        assert artifact.exists()
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.sim.compiled import engine_backend; "
             "print(engine_backend())"],
            env={**os.environ, "PYTHONPATH": str(SRC)},
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        assert out == "compiled"
    finally:
        compiled.clean()
