"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(3.5)
        assert env.now == 3.5

    p = env.process(proc())
    env.run()
    assert p.processed
    assert env.now == 3.5


def test_timeout_value_passed_back():
    env = Environment()
    got = []

    def proc():
        v = yield env.timeout(1, value="hello")
        got.append(v)

    env.process(proc())
    env.run()
    assert got == ["hello"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return 42

    p = env.process(proc())
    env.run()
    assert p.value == 42


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2)
        return "done"

    p = env.process(proc())
    assert env.run(until=p) == "done"


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(1)

    env.process(proc())
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_past_time_raises():
    env = Environment()
    env.run(until=5)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1)
        order.append(tag)

    for i in range(5):
        env.process(proc(i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_waits_on_process():
    env = Environment()
    trace = []

    def child():
        yield env.timeout(4)
        trace.append(("child", env.now))
        return "payload"

    def parent():
        v = yield env.process(child())
        trace.append(("parent", env.now, v))

    env.process(parent())
    env.run()
    assert trace == [("child", 4), ("parent", 4, "payload")]


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    seen = []

    def waiter():
        v = yield ev
        seen.append((env.now, v))

    def firer():
        yield env.timeout(7)
        ev.succeed("sig")

    env.process(waiter())
    env.process(firer())
    env.run()
    assert seen == [(7, "sig")]


def test_event_double_succeed_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter())
    ev.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_crashes_run():
    env = Environment()
    env.event().fail(RuntimeError("unattended"))
    with pytest.raises(RuntimeError, match="unattended"):
        env.run()


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("inner")

    def outer():
        with pytest.raises(ValueError, match="inner"):
            yield env.process(bad())

    p = env.process(outer())
    env.run(until=p)


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    trace = []

    def proc():
        yield env.timeout(3)
        v = yield ev  # ev processed long ago
        trace.append((env.now, v))

    env.process(proc())
    env.run()
    assert trace == [(3, "early")]


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def attacker(p):
        yield env.timeout(2)
        p.interrupt("stop it")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert log == [(2, "stop it")]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_rewait():
    env = Environment()
    log = []

    def victim():
        to = env.timeout(10)
        try:
            yield to
        except Interrupt:
            log.append(("interrupted", env.now))
        yield to  # original timeout still pending; wait it out
        log.append(("resumed", env.now))

    def attacker(p):
        yield env.timeout(3)
        p.interrupt()

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert log == [("interrupted", 3), ("resumed", 10)]


def test_self_interrupt_rejected():
    env = Environment()

    def proc():
        with pytest.raises(SimulationError):
            env.active_process.interrupt()
        yield env.timeout(0)

    env.process(proc())
    env.run()


def test_allof_waits_for_all():
    env = Environment()
    done_at = []

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        result = yield AllOf(env, [t1, t2])
        done_at.append(env.now)
        assert result[t1] == "a"
        assert result[t2] == "b"

    env.process(proc())
    env.run()
    assert done_at == [5]


def test_anyof_fires_on_first():
    env = Environment()
    done = []

    def proc():
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        result = yield AnyOf(env, [t1, t2])
        done.append((env.now, t1 in result, t2 in result))

    env.process(proc())
    env.run()
    assert done == [(1, True, False)]


def test_empty_allof_fires_immediately():
    env = Environment()
    fired = []

    def proc():
        yield AllOf(env, [])
        fired.append(env.now)

    env.process(proc())
    env.run()
    assert fired == [0]


def test_condition_failure_propagates():
    env = Environment()
    ev = env.event()

    def proc():
        with pytest.raises(RuntimeError):
            yield AllOf(env, [env.timeout(5), ev])

    def failer():
        yield env.timeout(1)
        ev.fail(RuntimeError("member died"))

    p = env.process(proc())
    env.process(failer())
    env.run(until=p)


def test_peek_and_step():
    env = Environment()
    env.timeout(3)
    env.timeout(1)
    assert env.peek() == 1
    env.step()
    assert env.now == 1
    assert env.peek() == 3


def test_step_empty_heap_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_run_until_unreachable_event_raises():
    env = Environment()
    ev = env.event()  # never triggered
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_many_processes_determinism():
    """Two identical runs produce the identical completion order."""

    def build():
        env = Environment()
        order = []

        def proc(i):
            yield env.timeout((i * 7) % 5 + 1)
            order.append(i)

        for i in range(50):
            env.process(proc(i))
        env.run()
        return order

    assert build() == build()
