"""Tests for locks, resources, priority queues, and stores."""

import pytest

from repro.sim import Environment, Lock, PriorityResource, Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    r1 = res.request()
    r2 = res.request()
    r3 = res.request()
    env.run(until=0)
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.count == 2
    assert res.queue_len == 1


def test_resource_release_grants_next():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    res.release(r1)
    assert r2.triggered
    assert res.count == 1


def test_resource_release_unheld_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()  # queued, never granted
    with pytest.raises(ValueError):
        res.release(r2)
    res.release(r1)


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(i):
        req = res.request()
        yield req
        order.append(i)
        yield env.timeout(1)
        res.release(req)

    for i in range(4):
        env.process(user(i))
    env.run()
    assert order == [0, 1, 2, 3]


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_priority_resource_orders_waiters():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        req = res.request(priority=0)
        yield req
        yield env.timeout(10)
        res.release(req)

    def waiter(name, prio, arrive):
        yield env.timeout(arrive)
        req = res.request(priority=prio)
        yield req
        order.append(name)
        res.release(req)

    env.process(holder())
    env.process(waiter("low-early", 5, 1))
    env.process(waiter("high-late", 1, 2))
    env.run()
    # High priority (lower number) overtakes the earlier low-priority waiter.
    assert order == ["high-late", "low-early"]


def test_priority_resource_fifo_within_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(5)
        res.release(req)

    def waiter(name, arrive):
        yield env.timeout(arrive)
        req = res.request(priority=3)
        yield req
        order.append(name)
        res.release(req)

    env.process(holder())
    env.process(waiter("a", 1))
    env.process(waiter("b", 2))
    env.run()
    assert order == ["a", "b"]


def test_request_cancel_removes_from_queue():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    r2.cancel()
    assert res.queue_len == 0
    res.release(r1)
    assert not r2.triggered


def test_priority_request_cancel():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    r1 = res.request()
    r2 = res.request(priority=1)
    r3 = res.request(priority=2)
    r2.cancel()
    res.release(r1)
    assert r3.triggered and not r2.triggered


def test_lock_accounting_held_and_contended():
    env = Environment()
    lock = Lock(env)

    def first():
        req = lock.request()
        yield req
        yield env.timeout(4)
        lock.release(req)

    def second():
        yield env.timeout(1)
        req = lock.request()
        yield req  # waits from t=1 to t=4
        yield env.timeout(2)
        lock.release(req)

    env.process(first())
    env.process(second())
    env.run()
    assert lock.held_time == pytest.approx(6.0)  # 4 + 2
    assert lock.contended_time == pytest.approx(3.0)
    assert not lock.locked


def test_lock_uncontended_has_zero_wait():
    env = Environment()
    lock = Lock(env)

    def user():
        req = lock.request()
        yield req
        yield env.timeout(1)
        lock.release(req)

    env.process(user())
    env.run()
    assert lock.contended_time == 0.0
    assert lock.held_time == pytest.approx(1.0)


def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            v = yield store.get()
            got.append((env.now, v))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert [v for _, v in got] == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        v = yield store.get()
        got.append((env.now, v))

    def producer():
        yield env.timeout(5)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(5, "x")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    events = []

    def producer():
        yield store.put("a")
        events.append(("a-in", env.now))
        yield store.put("b")
        events.append(("b-in", env.now))

    def consumer():
        yield env.timeout(3)
        v = yield store.get()
        events.append(("got-" + v, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("a-in", 0) in events
    assert ("b-in", 3) in events  # b only enters once a leaves


def test_store_try_get():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put("x")
    env.run()
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    env.run()
    assert len(store) == 2
