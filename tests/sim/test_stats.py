"""Tests for measurement primitives."""

import math

import numpy as np
import pytest

from repro.sim import Counter, IntervalRate, LatencyRecorder, TimeSeries, TimeWeighted, percentile


def test_percentile_empty_is_nan():
    assert math.isnan(percentile([], 99))


def test_percentile_single_value():
    assert percentile([7.0], 99.9) == 7.0


def test_percentile_median():
    assert percentile([1, 2, 3, 4, 5], 50) == 3


def test_counter_add_get():
    c = Counter()
    c.add("writes")
    c.add("writes", 2)
    assert c.get("writes") == 3
    assert c["missing"] == 0
    assert "writes" in c and "missing" not in c
    assert c.as_dict() == {"writes": 3}


def test_latency_recorder_summary():
    rec = LatencyRecorder("set")
    rec.extend([1.0, 2.0, 3.0, 4.0])
    s = rec.summary()
    assert s["count"] == 4
    assert s["mean"] == pytest.approx(2.5)
    assert s["max"] == 4.0
    assert len(rec) == 4


def test_latency_recorder_empty():
    rec = LatencyRecorder()
    assert math.isnan(rec.mean())
    assert math.isnan(rec.p(99.9))
    assert math.isnan(rec.max())


def test_latency_p999_tail_sensitivity():
    rec = LatencyRecorder()
    rec.extend([1.0] * 999 + [100.0])
    assert rec.p(50) == 1.0
    assert rec.p(99.9) > 50.0


def test_timeseries_monotonic_times_enforced():
    ts = TimeSeries()
    ts.record(1, 10)
    with pytest.raises(ValueError):
        ts.record(0.5, 20)


def test_timeseries_arrays_and_extrema():
    ts = TimeSeries()
    for t, v in [(0, 1), (1, 5), (2, 3)]:
        ts.record(t, v)
    assert len(ts) == 3
    assert ts.max() == 5
    assert ts.last() == 3
    np.testing.assert_array_equal(ts.times, [0, 1, 2])


def test_timeweighted_mean_and_peak():
    tw = TimeWeighted(t0=0.0, value=10.0)
    tw.update(5.0, 20.0)  # 10 for 5s
    tw.update(10.0, 0.0)  # 20 for 5s
    assert tw.peak == 20.0
    assert tw.mean(10.0) == pytest.approx(15.0)


def test_timeweighted_add_delta():
    tw = TimeWeighted()
    tw.add(1.0, 4.0)
    tw.add(2.0, -1.0)
    assert tw.value == 3.0
    assert tw.peak == 4.0


def test_timeweighted_time_backwards_raises():
    tw = TimeWeighted()
    tw.update(5, 1)
    with pytest.raises(ValueError):
        tw.update(4, 2)


def test_interval_rate_binning():
    r = IntervalRate()
    # 10 events in [0,1), 20 in [1,2)
    for i in range(10):
        r.record(i * 0.1)
    for i in range(20):
        r.record(1.0 + i * 0.05)
    centers, rates = r.rate(bin_width=1.0, t0=0.0, t1=2.0)
    assert len(centers) == 2
    assert rates[0] == pytest.approx(10.0)
    assert rates[1] == pytest.approx(20.0)


def test_interval_rate_mean():
    r = IntervalRate()
    for i in range(100):
        r.record(i * 0.01)  # 100 events in ~1s
    assert r.mean_rate(0.0, 1.0) == pytest.approx(100.0)
    assert r.count == 100


def test_interval_rate_empty():
    r = IntervalRate()
    centers, rates = r.rate(1.0)
    assert len(centers) == 0
    assert r.mean_rate() == 0.0


def test_interval_rate_weighted():
    r = IntervalRate()
    r.record(0.5, weight=5)
    r.record(0.6, weight=5)
    _, rates = r.rate(bin_width=1.0, t0=0.0, t1=1.0)
    assert rates[0] == pytest.approx(10.0)


def test_interval_rate_invalid_bin():
    r = IntervalRate()
    r.record(0.0)
    with pytest.raises(ValueError):
        r.rate(0)


def test_interval_rate_event_at_hi_counted():
    """Regression: an event exactly at t1 must land in the last bin.

    With bin_width=0.3 the float edge grid accumulates to
    0.8999999999999999 < 0.9, which used to drop the event at hi even
    though mean_rate's ``t <= hi`` mask counts it.
    """
    r = IntervalRate()
    for t in (0.0, 0.3, 0.6, 0.9):
        r.record(t)
    centers, rates = r.rate(0.3, t0=0.0, t1=0.9)
    total = float(np.sum(rates) * 0.3)
    assert total == pytest.approx(4.0)
    assert total == pytest.approx(r.mean_rate(0.0, 0.9) * 0.9)


def test_interval_rate_window_matches_mean_rate():
    """rate() and mean_rate() must agree on the same [t0, t1] window.

    Events beyond t1 used to leak into the trailing bin whenever the
    edge grid overshot hi (e.g. bin_width=0.4 over [0, 1]).
    """
    r = IntervalRate()
    for t in (0.0, 0.5, 1.0, 1.15):
        r.record(t)
    centers, rates = r.rate(0.4, t0=0.0, t1=1.0)
    total = float(np.sum(rates) * 0.4)
    assert total == pytest.approx(3.0)  # the 1.15 event is outside
    assert total == pytest.approx(r.mean_rate(0.0, 1.0) * 1.0)
    assert centers[-1] <= 1.0 + 0.4  # no bins beyond the window


def test_interval_rate_events_before_t0_excluded():
    r = IntervalRate()
    for t in (0.0, 1.0, 2.0):
        r.record(t)
    _, rates = r.rate(0.5, t0=0.5, t1=2.0)
    assert float(np.sum(rates) * 0.5) == pytest.approx(2.0)
    assert r.mean_rate(0.5, 2.0) * 1.5 == pytest.approx(2.0)


def test_timeweighted_mean_at_zero_span_returns_current_value():
    tw = TimeWeighted(t0=5.0, value=3.0)
    # no time has passed: the mean of a zero-length window is the
    # current value, not a division by zero
    assert tw.mean(t_end=5.0) == 3.0
    assert tw.mean() == 3.0
    tw.update(5.0, 7.0)  # same-instant update, still zero span
    assert tw.mean(t_end=5.0) == 7.0
