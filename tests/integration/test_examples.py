"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print something"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "cfd_checkpoint.py",
            "ml_feature_store.py", "design_space.py"} <= names
