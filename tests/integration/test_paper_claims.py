"""Fast integration tests of the paper's headline claims.

These are the benchmark shape checks distilled into the regular test
suite at a tiny scale, so `pytest tests/` alone guards the
reproduction's core results.
"""

import pytest

from repro import LoggingPolicy, SnapshotKind, build_baseline, build_slimio
from repro.bench.scales import TEST_SCALE


@pytest.fixture(scope="module")
def overall_runs():
    """One GC-pressured redis-bench run per (policy, system)."""
    out = {}
    for policy in (LoggingPolicy.PERIODICAL, LoggingPolicy.ALWAYS):
        for name, builder in (("baseline", build_baseline),
                              ("slimio", build_slimio)):
            system = builder(
                config=TEST_SCALE.system_config(gc_pressure=True,
                                                policy=policy))
            workload = TEST_SCALE.redis_bench(snapshot_at_fraction=0.5)
            rep = workload.run(system, warmup_ops=TEST_SCALE.warmup_ops)
            system.stop()
            out[(policy, name)] = rep
    return out


@pytest.mark.parametrize("policy", [LoggingPolicy.PERIODICAL,
                                    LoggingPolicy.ALWAYS])
def test_slimio_improves_non_snapshot_throughput(overall_runs, policy):
    """Paper abstract: up to 30% higher query throughput outside
    snapshots."""
    base = overall_runs[(policy, "baseline")]
    slim = overall_runs[(policy, "slimio")]
    assert slim.rps_wal_only > base.rps_wal_only


@pytest.mark.parametrize("policy", [LoggingPolicy.PERIODICAL,
                                    LoggingPolicy.ALWAYS])
def test_slimio_shortens_snapshots(overall_runs, policy):
    """Paper abstract: snapshot time reduced up to 25%."""
    base = overall_runs[(policy, "baseline")]
    slim = overall_runs[(policy, "slimio")]
    assert slim.mean_snapshot_time < base.mean_snapshot_time


@pytest.mark.parametrize("policy", [LoggingPolicy.PERIODICAL,
                                    LoggingPolicy.ALWAYS])
def test_slimio_cuts_tail_latency(overall_runs, policy):
    """Paper abstract: 99.9%-ile latency lowered (up to 50%)."""
    base = overall_runs[(policy, "baseline")]
    slim = overall_runs[(policy, "slimio")]
    assert slim.set_p999 < base.set_p999


def test_slimio_waf_is_exactly_one(overall_runs):
    """Paper abstract: WAF of 1.00 — no redundant internal writes."""
    for policy in (LoggingPolicy.PERIODICAL, LoggingPolicy.ALWAYS):
        assert overall_runs[(policy, "slimio")].waf == pytest.approx(1.0)


def test_baseline_pays_gc_copies(overall_runs):
    """The conventional device moves valid pages during GC."""
    assert overall_runs[(LoggingPolicy.PERIODICAL, "baseline")].waf > 1.0


def test_snapshot_phase_parity(overall_runs):
    """§5.2: during snapshots the two designs are near parity — the
    fork/CoW cost dominates and passthru cannot remove it."""
    base = overall_runs[(LoggingPolicy.PERIODICAL, "baseline")]
    slim = overall_runs[(LoggingPolicy.PERIODICAL, "slimio")]
    assert slim.rps_wal_snapshot > 0.6 * base.rps_wal_snapshot


def test_memory_footprints_comparable(overall_runs):
    """§5.2: SlimIO's extra threads don't change the footprint."""
    base = overall_runs[(LoggingPolicy.PERIODICAL, "baseline")]
    slim = overall_runs[(LoggingPolicy.PERIODICAL, "slimio")]
    assert abs(slim.peak_memory - base.peak_memory) < 0.25 * base.peak_memory


def test_recovery_faster_with_readahead():
    """Table 5's claim, as a plain test."""
    from repro.bench.experiments import _fill_store, _quiesce

    times = {}
    for name, builder in (("baseline", build_baseline),
                          ("slimio", build_slimio)):
        system = builder(
            config=TEST_SCALE.system_config(gc_pressure=False,
                                            trigger=False))
        _fill_store(system, TEST_SCALE.redis_keys, TEST_SCALE.redis_value)
        _quiesce(system)
        proc = system.server.start_snapshot(SnapshotKind.ON_DEMAND)
        system.env.run(until=proc)
        system.crash()
        rec = system.env.run(until=system.env.process(
            system.recover(SnapshotKind.ON_DEMAND)))
        system.stop()
        assert rec.snapshot_entries == TEST_SCALE.redis_keys
        times[name] = rec.duration
    assert times["slimio"] < times["baseline"]
