"""End-to-end coverage of less-default system variants."""

import pytest

from repro import LoggingPolicy, SnapshotKind, build_baseline, build_slimio
from repro.bench.experiments import EXPERIMENTS
from repro.bench.scales import TEST_SCALE
from repro.workloads import ClosedLoopWorkload


def small_workload():
    return ClosedLoopWorkload(clients=4, total_ops=400, key_count=100,
                              value_size=1024, snapshot_at_fraction=0.5)


@pytest.mark.parametrize("scheduler", ["none", "sync-priority",
                                       "mq-deadline"])
def test_baseline_runs_under_every_scheduler(scheduler):
    system = build_baseline(
        config=TEST_SCALE.system_config(gc_pressure=False,
                                        scheduler=scheduler))
    rep = small_workload().run(system)
    # quiesce the periodical WAL so recovery sees the full tail
    system.env.run(until=system.env.process(system.wal.flush_now()))
    result = system.env.run(until=system.env.process(system.recover()))
    assert result.data == system.server.store.as_dict()
    system.stop()
    assert rep.ops == 400


@pytest.mark.parametrize("fs", ["ext4", "f2fs"])
def test_baseline_runs_on_both_filesystems(fs):
    system = build_baseline(
        config=TEST_SCALE.system_config(gc_pressure=False, fs=fs))
    rep = small_workload().run(system)
    system.stop()
    assert rep.snapshot_count >= 1


def test_slimio_shared_ring_variant_roundtrips():
    system = build_slimio(
        config=TEST_SCALE.system_config(gc_pressure=False,
                                        shared_ring=True))
    small_workload().run(system)
    system.env.run(until=system.env.process(system.wal.flush_now()))
    result = system.env.run(until=system.env.process(
        system.recover(SnapshotKind.ON_DEMAND)))
    assert result.data == system.server.store.as_dict()
    system.stop()


def test_slimio_no_sqpoll_variant_roundtrips():
    system = build_slimio(
        config=TEST_SCALE.system_config(gc_pressure=False, sqpoll=False))
    small_workload().run(system)
    assert system.wal_ring.counters["enter_syscalls"] > 0
    system.stop()


def test_experiment_registry_complete():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "table4", "table5",
        "figure2a", "figure2b", "figure4", "figure5", "cluster",
        "tailtrace", "crashmatrix", "openloop",
    }
    for fn in EXPERIMENTS.values():
        assert callable(fn)


def test_always_log_ycsb_mix_roundtrips():

    system = build_slimio(config=TEST_SCALE.system_config(
        gc_pressure=False, policy=LoggingPolicy.ALWAYS))
    w = ClosedLoopWorkload(clients=4, total_ops=400, key_count=100,
                           value_size=512, get_ratio=0.5,
                           preload_records=100)
    w.run(system)
    system.crash()
    result = system.env.run(until=system.env.process(system.recover()))
    # every acked write is durable under Always-Log
    for k, v in result.data.items():
        assert system.server.store.get(k) == v
    system.stop()
