"""The tail-forensics acceptance claim, as a regular test.

``tailtrace`` is the mechanism-level companion to the cluster scaling
experiment: when tenants outnumber the PID budget, at least one slow
request must be *causally* attributed to a neighbor tenant's GC (its
critical path overlaps a copying reclaim of a stream the victim does
not own exclusively); with dedicated PIDs the attribution must vanish
— not merely shrink — because copy-free GC leaves nothing to blame.
"""

import pytest

from repro.bench.experiments import tailtrace
from repro.bench.scales import TEST_SCALE


@pytest.fixture(scope="module")
def result():
    """One tailtrace experiment run (two traced cluster runs)."""
    return tailtrace(TEST_SCALE)


def test_shared_pids_produce_cross_tenant_blame(result):
    """>=1 top-K slow op blamed on another tenant's GC when PIDs are
    shared (the paper's interference mechanism, per request)."""
    assert result.telemetry["shared"]["cross_tenant"] >= 1


def test_dedicated_pids_have_zero_cross_tenant_blame(result):
    """Isolation removes the blame entirely, not just mostly."""
    assert result.telemetry["dedicated"]["cross_tenant"] == 0
    assert result.telemetry["dedicated"]["waf_max"] == pytest.approx(1.0)


def test_all_shape_checks_hold(result):
    assert result.shapes_hold, result.format()


def test_report_contains_worked_waterfall(result):
    """The formatted report shows the forensics table and the worst
    cross-tenant victim's waterfall with the GC overlay row."""
    text = result.format()
    assert "cross-tenant" in text
    assert "gc_reclaim" in text
    assert "~" in text  # overlay track marker in the waterfall
