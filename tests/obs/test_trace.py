"""Request-level causal tracing: spans, retention, blame, exporters."""

import json

import pytest

from repro import LoggingPolicy, SystemConfig, build_slimio
from repro.obs import attach_tracer
from repro.obs.trace import (
    Attribution,
    OverlaySpan,
    RequestTracer,
    TraceContext,
    TraceSpan,
    attribute_interference,
    critical_path,
    dominant_layer,
    load_trace_jsonl,
    perfetto_trace,
    tail_report,
    trace_jsonl_records,
    validate_trace,
)
from repro.sim import Environment
from repro.workloads import RedisBenchWorkload


def _workload():
    return RedisBenchWorkload(
        clients=4, total_ops=600, key_count=128, value_size=2048,
        snapshot_at_fraction=0.5,
    )


def _traced_system(**tracer_kw):
    system = build_slimio(
        config=SystemConfig(policy=LoggingPolicy.ALWAYS))
    tracer = attach_tracer(system, **tracer_kw)
    return system, tracer


# ---------------------------------------------------------------- end to end
class TestEndToEnd:
    @pytest.fixture(scope="class")
    def run(self):
        system, tracer = _traced_system(sample_every=4, keep_slowest=8)
        rep = _workload().run(system)
        system.stop()
        tracer.drain_open()
        return system, tracer, rep

    def test_requests_counted_and_sampled(self, run):
        _, tracer, rep = run
        assert tracer.requests_seen == 600
        # sampling + reservoir keeps a bounded subset
        assert 600 // 4 <= len(tracer.kept) <= 600 // 4 + 8 + 4

    def test_traces_are_well_formed(self, run):
        _, tracer, _ = run
        problems = [p for ctx in tracer.kept.values()
                    for p in validate_trace(ctx)]
        assert problems == []

    def test_set_traces_reach_the_device(self, run):
        _, tracer, _ = run
        sets = [c for c in tracer.kept.values()
                if c.name == "SET" and not c.truncated]
        assert sets
        layers = set()
        names = set()
        for ctx in sets:
            layers.update(s.layer for s in ctx.spans)
            names.update(s.name for s in ctx.spans)
        # ALWAYS policy: the client waits on its WAL append, so the
        # causal chain runs server -> wal -> nvme -> nand in-trace
        assert {"server", "wal", "nvme", "nand"} <= layers
        assert {"wal_commit", "nvme_cmd", "nand_program"} <= names

    def test_tracing_is_pure_observation(self, run):
        """Attaching a tracer changes no simulator behavior: same
        events dispatched, same final sim time, with zero tracer
        events of its own."""
        traced_system, _, _ = run
        plain = build_slimio(
            config=SystemConfig(policy=LoggingPolicy.ALWAYS))
        _workload().run(plain)
        plain.stop()
        assert (plain.env.events_processed
                == traced_system.env.events_processed)
        assert plain.env.now == traced_system.env.now

    def test_jsonl_round_trip(self, run):
        _, tracer, _ = run
        records = trace_jsonl_records(tracer, run="unit")
        lines = [json.dumps(r) for r in records]
        meta, contexts, background, overlays = load_trace_jsonl(lines)
        assert meta["run"] == "unit"
        assert len(contexts) == len(tracer.kept)
        assert len(background) == len(tracer.background)
        total_spans = sum(len(c.spans) for c in tracer.kept.values())
        assert sum(len(c.spans) for c in contexts) == total_spans

    def test_perfetto_export_shape(self, run):
        _, tracer, _ = run
        doc = perfetto_trace(tracer, run="unit")
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X"} <= phases
        # serializable as-is
        json.dumps(doc)


# ---------------------------------------------------------------- retention
def _drive(env, gen):
    p = env.process(gen)
    env.run(until=p)


class TestRetention:
    def test_keep_slowest_reservoir(self):
        env = Environment()
        tracer = RequestTracer(env, sample_every=1000, keep_slowest=3)

        def gen():
            for i in range(20):
                ctx = tracer.start_request("GET")
                # request i takes i microseconds: slowest are 17,18,19
                yield env.timeout(i * 1e-6)
                tracer.finish_request(ctx)

        _drive(env, gen())
        assert tracer.requests_seen == 20
        durs = sorted(round(c.duration * 1e6) for c in
                      tracer.kept.values())
        assert durs == [17, 18, 19]
        assert tracer.requests_dropped == 17

    def test_head_sampling_is_unconditional(self):
        env = Environment()
        tracer = RequestTracer(env, sample_every=5, keep_slowest=2)

        def gen():
            for i in range(20):
                ctx = tracer.start_request("GET")
                yield env.timeout((20 - i) * 1e-6)  # early ones slowest
                tracer.finish_request(ctx)

        _drive(env, gen())
        sampled = {tid for tid, c in tracer.kept.items() if c.sampled}
        assert sampled == {5, 10, 15, 20}

    def test_drain_open_truncates_and_keeps(self):
        env = Environment()
        tracer = RequestTracer(env, sample_every=1000, keep_slowest=1)

        def gen():
            ctx = tracer.start_request("SET", tenant="shard0")
            tracer.open_span("wal_commit", "wal")
            yield env.timeout(1e-6)
            # power cut: nothing ever finishes
            drained = tracer.drain_open()
            assert drained == [ctx]

        _drive(env, gen())
        (ctx,) = tracer.kept.values()
        assert ctx.truncated
        assert validate_trace(ctx) == []
        assert all(s.t1 is not None for s in ctx.spans)
        assert any(s.labels.get("truncated") for s in ctx.spans)


# ---------------------------------------------------------------- analysis
def _span(tid, sid, parent, name, layer, t0, t1, **labels):
    return TraceSpan(tid, sid, parent, name, layer, t0, t1,
                     labels=labels or None)


def _ctx(tid, spans, tenant="a", name="SET"):
    ctx = TraceContext(tid, name, tenant, spans[0].t0)
    ctx.t1 = spans[0].t1
    ctx.spans.extend(spans)
    return ctx


class TestAnalysis:
    def test_critical_path_and_dominant_layer(self):
        spans = [
            _span(1, 1, None, "SET", "server", 0.0, 10.0),
            _span(1, 2, 1, "wal_commit", "wal", 2.0, 9.0),
            _span(1, 3, 2, "nand_program", "nand", 3.0, 8.0),
        ]
        layer, t = dominant_layer(spans)
        assert (layer, t) == ("nand", 5.0)
        segments = {(s.name, a, b) for s, a, b in critical_path(spans)}
        assert ("nand_program", 3.0, 8.0) in segments
        assert ("SET", 0.0, 2.0) in segments
        # total critical path covers the root exactly once
        assert sum(b - a for _, a, b in critical_path(spans)) == 10.0

    def test_direct_blame_cross_tenant(self):
        ctx = _ctx(1, [
            _span(1, 1, None, "SET", "server", 0.0, 10.0),
            _span(1, 2, 1, "nvme_cmd", "nvme", 4.0, 9.0),
        ])
        gc = [OverlaySpan("gc_reclaim", "gc", 5.0, 8.0,
                          {"stream": 3, "copied": 12})]
        att = attribute_interference(
            ctx, gc, stream_owners={3: {"a", "b"}})
        assert att.blamed and att.cross_tenant
        assert att.via == "direct"
        assert att.overlap == 3.0
        assert att.owners == ("a", "b")

    def test_copy_free_gc_is_never_blamed(self):
        ctx = _ctx(1, [
            _span(1, 1, None, "SET", "server", 0.0, 10.0),
            _span(1, 2, 1, "nvme_cmd", "nvme", 4.0, 9.0),
        ])
        gc = [OverlaySpan("gc_reclaim", "gc", 5.0, 8.0,
                          {"stream": 3, "copied": 0})]
        att = attribute_interference(ctx, gc, stream_owners={3: {"b"}})
        assert not att.blamed

    def test_own_stream_blame_is_not_cross_tenant(self):
        ctx = _ctx(1, [
            _span(1, 1, None, "SET", "server", 0.0, 10.0),
            _span(1, 2, 1, "nvme_cmd", "nvme", 4.0, 9.0),
        ])
        gc = [OverlaySpan("gc_reclaim", "gc", 5.0, 8.0,
                          {"stream": 3, "copied": 7})]
        att = attribute_interference(ctx, gc, stream_owners={3: {"a"}})
        assert att.blamed and not att.cross_tenant

    def test_group_commit_blame_via_links(self):
        """A request with no device spans of its own is blamed through
        the wal_flush that retired it (background buffer)."""
        ctx = _ctx(7, [_span(7, 1, None, "SET", "server", 0.0, 2.0)])
        flush = TraceSpan(-1, 9, None, "wal_flush", "wal", 5.0, 10.0,
                          links=(7,))
        flush_io = _span(-1, 10, 9, "nvme_cmd", "nvme", 6.0, 9.0)
        gc = [OverlaySpan("gc_reclaim", "gc", 6.5, 8.5,
                          {"stream": 1, "copied": 4})]
        att = attribute_interference(
            ctx, gc, background=[flush, flush_io],
            stream_owners={1: {"a", "b"}})
        assert att.blamed and att.cross_tenant
        assert att.via == "link"

    def test_tail_report_ranks_by_duration(self):
        ctxs = [
            _ctx(1, [_span(1, 1, None, "SET", "server", 0.0, 1.0)]),
            _ctx(2, [_span(2, 2, None, "SET", "server", 0.0, 5.0)]),
            _ctx(3, [_span(3, 3, None, "GET", "server", 0.0, 3.0)]),
        ]
        rep = tail_report(ctxs, top_k=2, requests_seen=3)
        assert [r.ctx.trace_id for r in rep.rows] == [2, 3]
        assert rep.kept == 3

    def test_attribution_defaults(self):
        assert not Attribution().blamed


# ---------------------------------------------------------------- CLI
def test_report_cli(tmp_path, capsys):
    from repro.obs import write_trace_jsonl
    from repro.obs.__main__ import main as obs_main

    system, tracer = _traced_system(sample_every=4, keep_slowest=8)
    _workload().run(system)
    system.stop()
    tracer.drain_open()
    path = tmp_path / "run.trace.jsonl"
    write_trace_jsonl(path, tracer, run="unit")
    assert obs_main(["report", str(path), "-k", "4", "-w", "1"]) == 0
    out = capsys.readouterr().out
    assert "tail forensics" in out
    assert "trace " in out  # at least one waterfall rendered


def test_report_cli_empty_dump_is_error(tmp_path, capsys):
    from repro.obs.__main__ import main as obs_main

    path = tmp_path / "empty.trace.jsonl"
    path.write_text('{"type": "meta", "run": "x"}\n')
    assert obs_main(["report", str(path)]) == 1
    assert "no traces" in capsys.readouterr().err
