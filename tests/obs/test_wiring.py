"""System-level wiring tests: attach, zero-cost contract, acceptance."""

import pytest

from repro import SnapshotKind, build_baseline, build_slimio
from repro.workloads import RedisBenchWorkload


def _workload():
    return RedisBenchWorkload(
        clients=4, total_ops=800, key_count=128, value_size=2048,
        snapshot_at_fraction=0.5,
    )


def _drive(system):
    rep = _workload().run(system)
    proc = system.server.start_snapshot(SnapshotKind.ON_DEMAND)
    system.env.run(until=proc)
    rec = system.env.run(
        until=system.env.process(system.recover(SnapshotKind.ON_DEMAND))
    )
    system.stop()
    return rep, rec


@pytest.mark.parametrize("builder", [build_baseline, build_slimio],
                         ids=["baseline", "slimio"])
def test_attach_obs_creates_and_returns_registry(builder):
    system = builder()
    reg = system.attach_obs()
    assert system.obs is reg
    assert reg.name == system.server.name


@pytest.mark.parametrize("builder", [build_baseline, build_slimio],
                         ids=["baseline", "slimio"])
def test_full_run_populates_all_layers(builder):
    system = builder()
    reg = system.attach_obs()
    _drive(system)

    snap = reg.snapshot()
    names = {inst.name for inst in reg.instruments()}
    # every layer shows up
    assert "server_commands_total" in names          # imdb/server
    assert "wal_flush_bytes" in names                # persist/wal
    assert "ftl_waf" in names                        # flash/ftl
    assert "recovery_wal_records_total" in names     # persist/recovery
    if builder is build_baseline:
        assert "pagecache_dirty_bytes" in names      # kernel/pagecache
        assert "fs_journal_commits_total" in names   # kernel/fs
        assert "block_cmds_total" in names           # kernel/blocklayer
    else:
        assert "uring_submitted_total" in names      # kernel/iouring
        assert "walpath_flush_pages_total" in names  # core/paths
        assert "snapshot_path_pages_total" in names
        assert "readahead_hits_total" in names       # core/readahead
    assert snap  # renders without error

    span_names = {s.name for s in reg.spans}
    assert {"wal_flush", "snapshot", "snapshot_write", "snapshot_load",
            "recovery_replay"} <= span_names


@pytest.mark.parametrize("builder", [build_baseline, build_slimio],
                         ids=["baseline", "slimio"])
def test_waf_gauge_matches_ftl_stats(builder):
    system = builder()
    reg = system.attach_obs()
    _drive(system)
    assert reg.gauge("ftl_waf").value == system.device.ftl.stats.waf


@pytest.mark.parametrize("builder", [build_baseline, build_slimio],
                         ids=["baseline", "slimio"])
def test_telemetry_is_zero_cost_and_invisible(builder):
    """The acceptance contract: attaching a registry must not change
    simulated time or any simulated outcome."""

    def run(attach):
        system = builder()
        if attach:
            system.attach_obs()
        rep, rec = _drive(system)
        return (system.env.now, system.device.ftl.stats.waf,
                rec.snapshot_entries, rec.wal_records_applied,
                rec.duration, rep.rps)

    assert run(False) == run(True)


@pytest.mark.parametrize("builder", [build_baseline, build_slimio],
                         ids=["baseline", "slimio"])
def test_serialized_tracks_do_not_overlap(builder):
    system = builder()
    reg = system.attach_obs()
    _drive(system)
    by_track = {}
    for s in reg.spans:
        by_track.setdefault((s.track, s.name), []).append(s)
    for (track, name), spans in by_track.items():
        spans.sort(key=lambda s: s.t0)
        for a, b in zip(spans, spans[1:]):
            assert a.t1 <= b.t0 + 1e-12, \
                f"same-name spans overlap on {track}/{name}"


def test_snapshot_write_nests_inside_snapshot():
    system = build_slimio()
    reg = system.attach_obs()
    _drive(system)
    outers = reg.spans_named("snapshot")
    for inner in reg.spans_named("snapshot_write"):
        assert any(o.t0 <= inner.t0 and inner.t1 <= o.t1 for o in outers)


def test_shared_ring_ablation_attaches_once():
    system = build_slimio(shared_ring=True)
    system.attach_obs()
    _drive(system)
    rings = {i.labels.get("ring") for i in system.obs.instruments()
             if i.name == "uring_submitted_total"}
    assert rings == {"wal-path"}  # snapshot traffic shares the WAL ring


def test_attach_explicit_registry():
    from repro.obs import MetricsRegistry

    system = build_slimio()
    reg = MetricsRegistry(system.env, name="mine")
    out = system.attach_obs(reg)
    assert out is reg and system.obs is reg
