"""MetricsRegistry and instrument tests."""
# slimlint: ignore-file[SLIM005] — toy instrument names exercise the
# registry machinery, not the production naming scheme

import pytest

from repro.obs import MetricsRegistry, render_metric_name
from repro.sim import Environment


@pytest.fixture
def reg():
    return MetricsRegistry(Environment(), name="t")


def test_counter_get_or_create_and_inc(reg):
    c = reg.counter("ops_total", op="set")
    assert reg.counter("ops_total", op="set") is c
    c.inc()
    c.inc(3)
    assert c.value == 4
    # different labels -> different instrument
    assert reg.counter("ops_total", op="get") is not c


def test_counter_rejects_negative(reg):
    with pytest.raises(ValueError):
        reg.counter("c").inc(-1)


def test_kind_mismatch_raises(reg):
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_gauge_watermarks(reg):
    g = reg.gauge("depth")
    g.set(5)
    g.set(1)
    g.set(9)
    assert g.value == 9
    assert g.low_water == 1
    assert g.high_water == 9
    g.add(-2)
    assert g.value == 7


def test_callback_gauge(reg):
    state = {"v": 1.5}
    g = reg.gauge("live", fn=lambda: state["v"])
    assert g.value == 1.5
    state["v"] = 2.0
    assert g.value == 2.0
    with pytest.raises(ValueError):
        g.set(3.0)


def test_histogram_exact_stats(reg):
    h = reg.histogram("lat")
    for v in (1.0, 2.0, 3.0, 4.0):
        h.observe(v)
    assert h.count == 4
    assert h.total == 10.0
    assert h.min == 1.0
    assert h.max == 4.0
    assert h.mean == 2.5
    s = h.summary()
    assert s["count"] == 4 and s["p50"] == 2.5


def test_histogram_reservoir_bounded_and_deterministic():
    def build():
        r = MetricsRegistry(Environment())
        h = r.histogram("x", reservoir=16)
        for i in range(1000):
            h.observe(float(i))
        return h

    a, b = build(), build()
    assert len(a.reservoir) == 16
    assert a.reservoir == b.reservoir  # deterministic per-instrument RNG
    assert a.count == 1000 and a.max == 999.0  # exact stats unaffected


def test_empty_histogram_summary(reg):
    h = reg.histogram("empty")
    assert h.summary() == {"count": 0, "sum": 0.0}
    assert h.percentile(50) != h.percentile(50)  # NaN


def test_render_metric_name():
    assert render_metric_name("x", {}) == "x"
    assert render_metric_name("x", {"b": 1, "a": "z"}) == 'x{a="z",b="1"}'


def test_snapshot_keys_and_kinds(reg):
    reg.counter("c", k="v").inc(2)
    reg.gauge("g").set(7)
    reg.histogram("h").observe(0.5)
    snap = reg.snapshot()
    assert snap['c{k="v"}'] == {"kind": "counter", "value": 2}
    assert snap["g"]["kind"] == "gauge" and snap["g"]["value"] == 7
    assert snap["h"]["count"] == 1


def test_event_log(reg):
    reg.event("progress", done=3, total=10)
    assert reg.events == [{"t": 0.0, "name": "progress",
                           "done": 3, "total": 10}]


# ---------------------------------------------------------------------------
# labeled views
# ---------------------------------------------------------------------------

def test_labeled_view_stamps_instruments(reg):
    view = reg.labeled(shard="shard0")
    c = view.counter("ops_total", op="set")
    assert c.labels == {"shard": "shard0", "op": "set"}
    c.inc()
    # the instrument lives in the base registry
    assert c in reg.instruments()
    # same name without the label is a distinct instrument
    assert reg.counter("ops_total", op="set") is not c


def test_labeled_view_call_site_wins(reg):
    view = reg.labeled(shard="shard0")
    c = view.counter("x", shard="override")
    assert c.labels["shard"] == "override"


def test_labeled_view_of_view_collapses(reg):
    inner = reg.labeled(a="1").labeled(b="2")
    assert inner.base is reg
    g = inner.gauge("depth")
    assert g.labels == {"a": "1", "b": "2"}


def test_labeled_view_events_and_spans(reg):
    view = reg.labeled(shard="shard3")
    view.event("reshard_begin", slots=8)
    assert reg.events[-1]["shard"] == "shard3"
    assert reg.events[-1]["name"] == "reshard_begin"


def test_reservoir_reproduces_across_interpreter_hash_seeds():
    """Regression (slimflow SLIM011): the reservoir RNG was seeded from
    builtin ``hash()``, which PYTHONHASHSEED salts per process — two
    identical runs sampled different reservoirs and percentile metrics
    stopped reproducing. The seed must come from a stable digest.
    """
    import os
    import subprocess
    import sys
    from pathlib import Path

    script = (
        "from repro.obs import MetricsRegistry\n"
        "from repro.sim import Environment\n"
        "r = MetricsRegistry(Environment())\n"
        "h = r.histogram('lat', reservoir=8, op='get', shard='s1')\n"
        "for i in range(500):\n"
        "    h.observe(float(i))\n"
        "print(h.reservoir)\n"
    )
    src = Path(__file__).resolve().parents[2] / "src"
    outs = []
    for hash_seed in ("1", "4242"):
        env = {**os.environ, "PYTHONHASHSEED": hash_seed,
               "PYTHONPATH": str(src)}
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, check=True)
        outs.append(proc.stdout)
    assert outs[0] == outs[1], (
        "reservoir sampling depends on the interpreter hash seed")
