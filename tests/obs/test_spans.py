"""Span context-manager tests."""

import pytest

from repro.obs import NULL_SPAN, MetricsRegistry, maybe_span
from repro.sim import Environment


def test_maybe_span_without_registry_is_shared_noop():
    s = maybe_span(None, "anything", track="t", k="v")
    assert s is NULL_SPAN
    with s:
        pass  # no-op, no state


def test_span_records_sim_time():
    env = Environment()
    reg = MetricsRegistry(env)

    def proc():
        yield env.timeout(1.0)
        with maybe_span(reg, "work", track="io", kind="x"):
            yield env.timeout(2.5)

    env.run(until=env.process(proc()))
    (rec,) = reg.spans
    assert rec.name == "work" and rec.track == "io"
    assert rec.t0 == 1.0 and rec.t1 == 3.5
    assert rec.duration == 2.5
    assert rec.labels == {"kind": "x"}
    assert rec.ok


def test_span_emits_into_tracer():
    env = Environment()
    reg = MetricsRegistry(env)
    with reg.span("flush", track="wal"):
        pass
    events = [r.event for r in reg.tracer.records("wal")]
    assert events == ["flush:begin", "flush:end"]


def test_span_exception_propagates_and_marks_not_ok():
    reg = MetricsRegistry(Environment())
    with pytest.raises(RuntimeError):
        with reg.span("bad"):
            raise RuntimeError("boom")
    (rec,) = reg.spans
    assert not rec.ok
    assert [r.event for r in reg.tracer.records("main")] == \
        ["bad:begin", "bad:error"]


def test_spans_named_filter():
    reg = MetricsRegistry(Environment())
    for name in ("a", "b", "a"):
        with reg.span(name):
            pass
    assert len(reg.spans_named("a")) == 2
    assert len(reg.spans_named("b")) == 1


def test_span_capacity_eviction():
    reg = MetricsRegistry(Environment(), span_capacity=2)
    for i in range(5):
        with reg.span(f"s{i}"):
            pass
    assert len(reg.spans) == 2
    assert reg.spans_dropped == 3
    assert [s.name for s in reg.spans] == ["s3", "s4"]  # oldest evicted
