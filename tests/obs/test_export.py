"""Exporter tests: JSONL round-trip, Prometheus text, Chrome trace, CLI."""
# slimlint: ignore-file[SLIM005] — toy instrument names exercise the
# exporter machinery, not the production naming scheme

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    chrome_trace,
    jsonl_records,
    load_jsonl,
    prometheus_text,
    summarize_records,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.__main__ import main as obs_main
from repro.sim import Environment


@pytest.fixture
def reg():
    env = Environment()
    reg = MetricsRegistry(env, name="demo")
    reg.counter("ops_total", op="set").inc(10)
    reg.gauge("depth").set(4)
    h = reg.histogram("lat")
    for v in (0.001, 0.002, 0.004):
        h.observe(v)

    def proc():
        with reg.span("flush", track="wal", policy="periodical"):
            yield env.timeout(0.25)
        with reg.span("reclaim", track="gc"):
            yield env.timeout(0.1)
        reg.event("progress", done=1)

    env.run(until=env.process(proc()))
    return reg


def test_jsonl_stream_shape(reg):
    recs = list(jsonl_records(reg))
    assert recs[0]["type"] == "meta"
    assert recs[0]["run"] == "demo" and recs[0]["spans"] == 2
    types = [r["type"] for r in recs]
    assert types.count("span") == 2
    assert types.count("event") == 1
    assert types.count("counter") == 1
    assert types.count("gauge") == 1
    assert types.count("histogram") == 1
    span = next(r for r in recs if r["type"] == "span")
    assert span["name"] == "flush" and span["dur"] == 0.25
    assert span["labels"] == {"policy": "periodical"}


def test_jsonl_round_trip(reg, tmp_path):
    path = tmp_path / "run.jsonl"
    n = write_jsonl(reg, path)
    loaded = load_jsonl(path)
    assert len(loaded) == n
    assert loaded == list(jsonl_records(reg))


def test_prometheus_text(reg):
    text = prometheus_text(reg)
    assert '# TYPE ops_total counter' in text
    assert 'ops_total{op="set"} 10.0' in text
    assert "# TYPE depth gauge" in text
    assert "depth 4.0" in text
    assert "# TYPE lat summary" in text
    assert "lat_count 3" in text
    assert 'lat{quantile="0.50"}' in text


def test_chrome_trace_structure(reg):
    trace = chrome_trace(reg.spans, run_name="demo")
    xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    assert len(xs) == 2
    # one tid per track, named via metadata events
    names = {e["args"]["name"] for e in metas if e["name"] == "thread_name"}
    assert names == {"wal", "gc"}
    flush = next(e for e in xs if e["name"] == "flush")
    assert flush["ts"] == 0.0 and flush["dur"] == 0.25 * 1e6  # microseconds
    assert flush["args"] == {"policy": "periodical"}


def test_chrome_trace_accepts_jsonl_dicts(reg, tmp_path):
    path = tmp_path / "run.jsonl"
    write_jsonl(reg, path)
    spans = [r for r in load_jsonl(path) if r["type"] == "span"]
    trace = chrome_trace(spans)
    assert sum(e["ph"] == "X" for e in trace["traceEvents"]) == 2


def test_write_chrome_trace(reg, tmp_path):
    out = tmp_path / "t.json"
    n = write_chrome_trace(reg, out)
    assert n == 2
    loaded = json.loads(out.read_text())
    assert loaded["displayTimeUnit"] == "ms"


def test_summarize_records(reg, tmp_path):
    path = tmp_path / "run.jsonl"
    write_jsonl(reg, path)
    text = summarize_records(load_jsonl(path))
    assert "run: demo" in text
    assert "flush" in text and "reclaim" in text
    assert "ops_total" in text
    assert "event log: 1 entries" in text


def test_cli_summarize_and_trace(reg, tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    write_jsonl(reg, path)
    assert obs_main(["summarize", str(path)]) == 0
    assert "run: demo" in capsys.readouterr().out

    out = tmp_path / "run.trace.json"
    assert obs_main(["trace", str(path), "-o", str(out)]) == 0
    assert json.loads(out.read_text())["traceEvents"]


def test_cli_summarize_empty_is_error(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert obs_main(["summarize", str(path)]) == 1
    assert "empty" in capsys.readouterr().err


def test_prometheus_empty_histogram_has_no_nan_quantiles():
    """A never-observed histogram exports count/sum but no NaN
    quantile lines (pin for the empty-reservoir edge)."""
    env = Environment()
    reg = MetricsRegistry(env, name="empty")
    reg.histogram("lat")  # registered, never observed
    text = prometheus_text(reg)
    assert 'lat_count 0' in text
    assert 'lat_sum 0.0' in text
    assert "quantile" not in text
    assert "NaN" not in text


def test_prometheus_nonempty_histogram_keeps_quantiles(reg):
    text = prometheus_text(reg)
    assert 'lat{quantile="0.50"}' in text
    assert 'lat{quantile="0.99"}' in text
    assert "NaN" not in text


def test_summary_faults_and_retries_section():
    """faults_* / uring_retries_total surface as their own forensics
    section in the text summary."""
    env = Environment()
    reg = MetricsRegistry(env, name="faulty")
    reg.counter("faults_errors_injected_total").inc(3)
    reg.counter("uring_retries_total", ring="wal").inc(2)
    reg.counter("uring_retry_giveups_total", ring="wal")
    recs = list(jsonl_records(reg))
    text = summarize_records(recs)
    assert "faults & retries:" in text
    assert "injected events: 3   ring retries: 2   give-ups: 0" in text
    assert "faults_errors_injected_total" in text
    assert 'uring_retries_total{ring="wal"}' in text
    # and the same counters appear in the Prometheus exposition
    prom = prometheus_text(reg)
    assert "faults_errors_injected_total 3" in prom
    assert 'uring_retries_total{ring="wal"} 2' in prom


def test_summary_without_faults_has_no_section(reg):
    assert "faults & retries" not in summarize_records(
        list(jsonl_records(reg)))
