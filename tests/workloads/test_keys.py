"""Key/value generator tests."""

import numpy as np
import pytest

from repro.persist.compress import Compressor
from repro.workloads import UniformKeys, ZipfianKeys, make_key, make_value


def test_make_key_fixed_width():
    assert len(make_key(0)) == 8
    assert len(make_key(123456, width=4)) == 4
    assert make_key(1) != make_key(2)


def test_make_value_deterministic():
    assert make_value(b"k1", 500) == make_value(b"k1", 500)
    assert make_value(b"k1", 500) != make_value(b"k2", 500)


def test_make_value_size_exact():
    for size in (1, 10, 100, 4096, 5000):
        assert len(make_value(b"key", size)) == size


def test_make_value_size_validation():
    with pytest.raises(ValueError):
        make_value(b"k", 0)


def test_make_value_compressibility_tunable():
    comp = Compressor()
    soft = make_value(b"k", 4096, incompressible_fraction=0.1)
    hard = make_value(b"k", 4096, incompressible_fraction=0.95)
    assert comp.ratio(soft) < comp.ratio(hard)
    # default lands in LZF-on-real-data territory
    default = make_value(b"k", 4096)
    assert 0.3 < comp.ratio(default) < 0.95


def test_uniform_keys_in_range():
    gen = UniformKeys(100, seed=3)
    draws = gen.draw(10_000)
    assert draws.min() >= 0
    assert draws.max() < 100
    # roughly uniform: every key appears
    assert len(np.unique(draws)) == 100


def test_uniform_deterministic_by_seed():
    a = UniformKeys(50, seed=9).draw(100)
    b = UniformKeys(50, seed=9).draw(100)
    np.testing.assert_array_equal(a, b)
    c = UniformKeys(50, seed=10).draw(100)
    assert not np.array_equal(a, c)


def test_zipfian_keys_in_range():
    gen = ZipfianKeys(1000, seed=3)
    draws = gen.draw(20_000)
    assert draws.min() >= 0
    assert draws.max() < 1000


def test_zipfian_is_skewed():
    gen = ZipfianKeys(1000, theta=0.99, seed=3)
    draws = gen.draw(50_000)
    _, counts = np.unique(draws, return_counts=True)
    counts = np.sort(counts)[::-1]
    # the hottest key takes a disproportionate share
    assert counts[0] > 10 * np.median(counts)
    # top-10% of keys take the majority of accesses
    top = counts[: len(counts) // 10].sum()
    assert top > 0.5 * draws.size


def test_zipfian_hot_keys_scattered():
    """YCSB-style scramble: the hottest key is not simply index 0."""
    gens = [ZipfianKeys(1000, seed=s) for s in (1, 2)]
    hot = []
    for g in gens:
        draws = g.draw(20_000)
        vals, counts = np.unique(draws, return_counts=True)
        hot.append(vals[np.argmax(counts)])
    # same scramble for same seed base logic; existence check:
    assert any(h != 0 for h in hot)


def test_zipfian_validation():
    with pytest.raises(ValueError):
        ZipfianKeys(0)
    with pytest.raises(ValueError):
        ZipfianKeys(10, theta=1.5)
    with pytest.raises(ValueError):
        UniformKeys(0)
