"""Closed-loop workload runner tests (on fast small systems)."""

import pytest

from repro import LoggingPolicy, SystemConfig, build_baseline, build_slimio
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ServerConfig
from repro.workloads import ClosedLoopWorkload, RedisBenchWorkload, YcsbAWorkload

FAST = NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                  channel_transfer=0.2e-6)
CFG = SystemConfig(
    geometry=FlashGeometry(channels=2, dies_per_channel=2, blocks_per_die=48,
                           pages_per_block=32),
    nand=FAST,
    ftl=FtlConfig(op_ratio=0.15, gc_trigger_segments=3, gc_stop_segments=4,
                  gc_reserve_segments=2),
    server=ServerConfig(snapshot_chunk_entries=16),
    wal_flush_interval=0.01,
    dirty_limit_bytes=128 * 4096,
    fs_extent_pages=16,
)


def test_report_basic_fields():
    system = build_slimio(config=CFG)
    w = ClosedLoopWorkload(clients=4, total_ops=400, key_count=100,
                           value_size=512)
    rep = w.run(system)
    system.stop()
    assert rep.ops == 400
    assert rep.duration > 0
    assert rep.rps > 0
    assert rep.set_p999 > 0
    assert rep.steady_memory > 0
    assert rep.timeline is not None


def test_snapshot_at_fraction_runs_one_snapshot():
    system = build_baseline(config=CFG)
    w = ClosedLoopWorkload(clients=4, total_ops=400, key_count=100,
                           value_size=512, snapshot_at_fraction=0.5)
    rep = w.run(system)
    system.stop()
    assert rep.snapshot_count == 1
    assert rep.rps_wal_snapshot > 0
    assert rep.mean_snapshot_time > 0


def test_get_ratio_mixes_reads():
    system = build_slimio(config=CFG)
    w = ClosedLoopWorkload(clients=4, total_ops=600, key_count=100,
                           value_size=512, get_ratio=0.5,
                           preload_records=100)
    rep = w.run(system)
    system.stop()
    assert rep.get_p999 > 0
    assert rep.set_p999 > 0


def test_preload_populates_store_without_sim_time():
    system = build_slimio(config=CFG)
    w = ClosedLoopWorkload(clients=1, total_ops=1, key_count=50,
                           value_size=256, preload_records=50)
    w.preload(system)
    assert len(system.server.store) == 50
    assert system.env.now == 0.0
    system.stop()


def test_warmup_excluded_from_metrics():
    system = build_slimio(config=CFG)
    w = ClosedLoopWorkload(clients=4, total_ops=1000, key_count=100,
                           value_size=512)
    rep = w.run(system, warmup_ops=500)
    system.stop()
    # only the measured half is in the metrics
    assert rep.ops <= 520


def test_deterministic_across_runs():
    def once():
        system = build_slimio(config=CFG)
        w = ClosedLoopWorkload(clients=4, total_ops=300, key_count=80,
                               value_size=512, seed=42)
        rep = w.run(system)
        system.stop()
        return rep.duration, rep.rps, rep.set_p999

    assert once() == once()


def test_redisbench_defaults_match_paper_shape():
    w = RedisBenchWorkload()
    assert w.get_ratio == 0.0
    assert w.value_size == 4096
    assert w.clients == 50
    assert not w.zipfian


def test_ycsb_defaults_match_paper_shape():
    w = YcsbAWorkload()
    assert w.get_ratio == 0.5
    assert w.value_size == 2048
    assert w.clients == 8
    assert w.zipfian
    assert w.preload_records == w.key_count


def test_validation():
    with pytest.raises(ValueError):
        ClosedLoopWorkload(clients=0)
    with pytest.raises(ValueError):
        ClosedLoopWorkload(get_ratio=2.0)
    with pytest.raises(ValueError):
        ClosedLoopWorkload(target_rate=0.0)


def test_unpaced_run_has_no_corrected_series():
    system = build_slimio(config=CFG)
    w = ClosedLoopWorkload(clients=4, total_ops=200, key_count=50,
                           value_size=512)
    rep = w.run(system)
    system.stop()
    assert rep.target_rate is None
    assert rep.corrected_set_p999 != rep.corrected_set_p999  # NaN
    assert rep.late_starts == 0


def test_paced_run_below_capacity_matches_closed_loop():
    system = build_slimio(config=CFG)
    w = ClosedLoopWorkload(clients=4, total_ops=300, key_count=80,
                           value_size=512, target_rate=2_000.0)
    rep = w.run(system)
    system.stop()
    assert rep.target_rate == 2_000.0
    # the schedule is easy: ops start on time and the corrected p999
    # is the same order of magnitude as the server-measured one
    assert rep.corrected_set_p999 == rep.corrected_set_p999  # not NaN
    assert rep.corrected_set_p999 < 20 * rep.set_p999


def test_coordinated_omission_bias_exposed_past_capacity():
    """The regression this feature exists for: a closed loop lets the
    server throttle its own load generator, so server-side percentiles
    miss all queueing delay. Paced against an impossible schedule, the
    corrected p999 must blow up while the server-measured p999 (per-op
    service time only) stays flat."""
    system = build_slimio(config=CFG)
    w = ClosedLoopWorkload(clients=4, total_ops=400, key_count=100,
                           value_size=512, target_rate=5e6)
    rep = w.run(system)
    system.stop()
    assert rep.late_starts > 0
    # the biased number cannot see the backlog; the corrected one must
    assert rep.corrected_set_p999 > 10 * rep.set_p999
    assert rep.corrected_set_mean > rep.set_mean


def test_paced_run_is_deterministic():
    def once():
        system = build_slimio(config=CFG)
        w = ClosedLoopWorkload(clients=4, total_ops=300, key_count=80,
                               value_size=512, seed=42, target_rate=3_000.0)
        rep = w.run(system)
        system.stop()
        return (rep.corrected_set_p999, rep.corrected_get_p999,
                rep.corrected_set_mean, rep.late_starts)

    assert once() == once()


def test_paced_run_respects_warmup_reset():
    system = build_slimio(config=CFG)
    w = ClosedLoopWorkload(clients=4, total_ops=600, key_count=100,
                           value_size=512, target_rate=5e6)
    rep = w.run(system, warmup_ops=300)
    system.stop()
    # only the measured half contributes corrected samples; at 5M/s
    # the whole run is late, so every measured op is a late start
    assert 0 < rep.late_starts <= 310
    assert rep.corrected_set_p999 == rep.corrected_set_p999  # not NaN


def test_always_log_policy_through_runner():
    import dataclasses

    cfg = dataclasses.replace(CFG, policy=LoggingPolicy.ALWAYS)
    system = build_slimio(config=cfg)
    w = ClosedLoopWorkload(clients=4, total_ops=200, key_count=50,
                           value_size=512)
    rep = w.run(system)
    system.stop()
    assert rep.ops == 200
    # group commits happened
    assert system.wal.counters["group_commits"] > 0
