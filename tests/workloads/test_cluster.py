"""ClusterWorkload: one op stream fanned over shards, two-level report."""

import pytest

from repro.workloads import ClusterWorkload, YcsbAWorkload

from tests.cluster.conftest import make_cluster


def small_shape(**kw):
    args = dict(clients=4, total_ops=1200, key_count=150, value_size=256)
    args.update(kw)
    return YcsbAWorkload(**args)


@pytest.mark.parametrize("design", ["slimio", "baseline"])
def test_report_shape(design):
    cl = make_cluster(2, design=design)
    report = ClusterWorkload(small_shape()).run(cl)
    assert report.num_shards == 2
    assert report.shard_names == ["shard0", "shard1"]
    assert sum(r.ops for r in report.per_shard) == report.aggregate.ops
    assert report.aggregate.ops == 1200
    assert sum(report.routed) == 1200
    assert report.aggregate.rps > 0
    assert len(report.shard_waf) == 2
    assert all(w >= 1.0 for w in report.shard_waf)
    if design == "slimio":
        assert report.pid_allocation["mode"] == "dedicated"
    else:
        assert report.pid_allocation == {}
    cl.stop()


def test_warmup_excluded_from_metrics():
    cl = make_cluster(2)
    report = ClusterWorkload(small_shape()).run(cl, warmup_ops=400)
    # measured ops exclude the warmup prefix; clients already in
    # flight when the boundary trips may land just after the reset
    assert 800 <= report.aggregate.ops <= 800 + 4
    assert sum(report.routed) == 1200 - 400
    cl.stop()


def test_snapshots_run_on_every_shard():
    cl = make_cluster(2)
    report = ClusterWorkload(
        small_shape(snapshot_at_fraction=0.5)
    ).run(cl)
    assert all(r.snapshot_count >= 1 for r in report.per_shard)
    assert report.aggregate.snapshot_count \
        == sum(r.snapshot_count for r in report.per_shard)
    cl.stop()


def test_preload_routes_by_slot():
    cl = make_cluster(4)
    wl = ClusterWorkload(small_shape(preload_records=100))
    wl.preload(cl)
    total = sum(
        len(list(s.server.store.snapshot_items())) for s in cl
    )
    assert total == 100
    for shard in cl:
        for key, _ in shard.server.store.snapshot_items():
            assert cl.slot_map.shard_for_key(key) == shard.index
    cl.stop()
