"""Trace record/replay tests."""

import pytest

from repro import SystemConfig, build_slimio
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ClientOp
from repro.workloads.trace import TraceWorkload, load_trace, save_trace

CFG = SystemConfig(
    geometry=FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=48,
                           pages_per_block=16),
    nand=NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                    channel_transfer=0.0),
    ftl=FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                  gc_reserve_segments=2),
    wal_flush_interval=0.01,
)

OPS = [
    ClientOp("SET", b"alpha", b"1"),
    ClientOp("SET", b"\x00\xffbin", bytes(range(16))),
    ClientOp("GET", b"alpha"),
    ClientOp("DEL", b"alpha"),
]


def test_save_load_roundtrip(tmp_path):
    p = tmp_path / "ops.trace"
    assert save_trace(OPS, p) == 4
    assert load_trace(p) == OPS


def test_load_skips_comments_and_blanks(tmp_path):
    p = tmp_path / "ops.trace"
    p.write_text("# comment\n\nSET 6b 76\n")
    ops = load_trace(p)
    assert ops == [ClientOp("SET", b"k", b"v")]


def test_load_rejects_malformed(tmp_path):
    p = tmp_path / "bad.trace"
    p.write_text("SET onlyonearg\n")
    with pytest.raises(ValueError, match="malformed"):
        load_trace(p)
    p.write_text("FLUSH 6b\n")
    with pytest.raises(ValueError):
        load_trace(p)


def test_replay_drives_system(tmp_path):
    p = tmp_path / "ops.trace"
    ops = [ClientOp("SET", b"k%d" % i, b"v" * 100) for i in range(50)]
    save_trace(ops, p)
    system = build_slimio(config=CFG)
    summary = TraceWorkload.from_file(p, clients=4).run(system)
    system.stop()
    assert summary["ops"] == 50
    assert summary["rps"] > 0
    assert system.server.store.get(b"k49") == b"v" * 100


def test_replay_determinism(tmp_path):
    p = tmp_path / "ops.trace"
    ops = [ClientOp("SET", b"k%d" % (i % 7), b"v" * 64) for i in range(60)]
    save_trace(ops, p)

    def once():
        system = build_slimio(config=CFG)
        s = TraceWorkload.from_file(p, clients=3).run(system)
        system.stop()
        return s["duration"], s["set_p999"]

    assert once() == once()


def test_validation():
    with pytest.raises(ValueError):
        TraceWorkload([], clients=1)
    with pytest.raises(ValueError):
        TraceWorkload(OPS, clients=0)
