"""Filesystem tests: namespace, extents, journal contention, durability."""

import pytest

from repro.kernel import CpuAccount, Ext4, F2fs

from tests.kernel.conftest import drive


@pytest.fixture
def fs(env, block, cache):
    return Ext4(env, block, cache, extent_pages=8)


def test_create_open_exists(env, fs):
    f = fs.create("wal.aof")
    assert fs.exists("wal.aof")
    assert fs.open("wal.aof").inode is f.inode
    with pytest.raises(FileExistsError):
        fs.create("wal.aof")
    with pytest.raises(FileNotFoundError):
        fs.open("nope")


def test_write_read_roundtrip(env, fs, account):
    f = fs.create("data")
    payload = b"the quick brown fox" * 100

    def proc():
        yield from f.write(payload, account)
        data = yield from f.read(0, len(payload), account)
        return data

    assert drive(env, proc()) == payload
    assert f.size == len(payload)


def test_append_semantics(env, fs, account):
    f = fs.create("log")

    def proc():
        yield from f.write(b"one", account)
        yield from f.write(b"two", account)
        data = yield from f.read(0, 6, account)
        return data

    assert drive(env, proc()) == b"onetwo"


def test_pwrite_at_offset(env, fs, account):
    f = fs.create("data")

    def proc():
        yield from f.write(b"AAAAAA", account)
        yield from f.pwrite(2, b"bb", account)
        data = yield from f.read(0, 6, account)
        return data

    assert drive(env, proc()) == b"AAbbAA"


def test_read_beyond_eof_truncates(env, fs, account):
    f = fs.create("data")

    def proc():
        yield from f.write(b"short", account)
        data = yield from f.read(0, 100, account)
        return data

    assert drive(env, proc()) == b"short"


def test_extent_allocation_grows_file(env, fs, account):
    f = fs.create("big")
    payload = bytes(10 * 4096)  # needs 2 extents at extent_pages=8

    def proc():
        yield from f.write(payload, account)

    drive(env, proc())
    assert f.inode.allocated_pages() >= 10
    assert fs.counters["extent_allocs"] >= 2


def test_out_of_space_raises(env, fs, account):
    f = fs.create("huge")
    too_big = fs.block.device.capacity_bytes + 4096

    def proc():
        yield from f.write(bytes(too_big), account)

    env.process(proc())
    with pytest.raises(OSError):
        env.run()


def test_unlink_frees_space_and_trims(env, fs, account, device):
    free0 = fs.free_bytes
    f = fs.create("temp")

    def proc():
        yield from f.write(bytes(8 * 4096), account)
        yield from f.fsync(account)

    drive(env, proc())
    assert fs.free_bytes < free0
    fs.unlink("temp")
    env.run()  # let the discard process finish
    assert fs.free_bytes == free0
    assert fs.counters["discarded_pages"] >= 8
    assert not fs.exists("temp")


def test_rename_replaces_target(env, fs, account):
    a = fs.create("snapshot.tmp")
    b = fs.create("snapshot.rdb")

    def proc():
        yield from a.write(b"new", account)
        yield from b.write(b"old", account)

    drive(env, proc())
    fs.rename("snapshot.tmp", "snapshot.rdb")
    env.run()
    assert fs.file_size("snapshot.rdb") == 3
    f = fs.open("snapshot.rdb")

    def check():
        data = yield from f.read(0, 3, account)
        return data

    assert drive(env, check()) == b"new"
    assert not fs.exists("snapshot.tmp")


def test_fsync_makes_data_durable_across_crash(env, fs, account, device):
    f = fs.create("durable")
    payload = b"Z" * 4096

    def proc():
        yield from f.write(payload, account)
        yield from f.fsync(account)

    drive(env, proc())
    fs.cache.crash()
    lba = f.inode.page_to_lba(0)
    assert device.peek(lba, 1) == payload


def test_unsynced_write_lost_on_crash(env, fs, account, device):
    f = fs.create("volatile")

    def proc():
        yield from f.write(b"Y" * 4096, account)

    drive(env, proc())
    fs.cache.crash()
    lba = f.inode.page_to_lba(0)
    assert device.peek(lba, 1) == bytes(4096)


def test_journal_contention_between_two_processes(env, block, cache):
    """Two writers on one FS contend on the commit lock (paper §3.1.2)."""
    fs = Ext4(env, block, cache, extent_pages=8)
    wal_acct = CpuAccount(env, "wal")
    snap_acct = CpuAccount(env, "snap")
    f1 = fs.create("wal")
    f2 = fs.create("snap")

    def writer(f, acct):
        for _ in range(50):
            yield from f.write(b"x" * 512, acct)

    env.process(writer(f1, wal_acct))
    env.process(writer(f2, snap_acct))
    env.run()
    total_lock_wait = wal_acct.time_in("fs_lock_wait") + snap_acct.time_in(
        "fs_lock_wait"
    )
    assert total_lock_wait > 0
    assert fs.commit_lock.contended_time > 0


def test_f2fs_contends_less_than_ext4(env, device, costs):
    """Same concurrent workload: F2FS commit lock is held for less time."""
    from repro.kernel import BlockLayer, PageCache

    def run(fs_cls):
        from repro.sim import Environment

        env2 = Environment()
        from repro.flash import FlashGeometry
        from repro.nvme import NvmeDevice
        from tests.kernel.conftest import FAST_NAND, SMALL_FTL

        g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=24,
                          pages_per_block=16)
        dev = NvmeDevice(env2, g, FAST_NAND, SMALL_FTL)
        blk = BlockLayer(env2, dev, costs)
        cache = PageCache(env2, blk, costs, dirty_limit_bytes=64 * 4096)
        fs = fs_cls(env2, blk, cache, extent_pages=8)
        a1, a2 = CpuAccount(env2, "a"), CpuAccount(env2, "b")
        f1, f2 = fs.create("one"), fs.create("two")

        def writer(f, acct):
            for _ in range(100):
                yield from f.write(b"x" * 512, acct)

        env2.process(writer(f1, a1))
        env2.process(writer(f2, a2))
        env2.run()
        return fs.commit_lock.held_time

    assert run(F2fs) < run(Ext4)


def test_fs_cpu_attributed_to_account(env, fs, account):
    f = fs.create("x")

    def proc():
        yield from f.write(b"data" * 100, account)

    drive(env, proc())
    assert account.time_in("fs") > 0
    assert account.time_in("syscall") > 0
    assert account.time_in("copy") > 0


def test_file_size_api(env, fs, account):
    fs.create("empty")
    assert fs.file_size("empty") == 0
    with pytest.raises(FileNotFoundError):
        fs.file_size("ghost")
