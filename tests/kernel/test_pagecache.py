"""Page cache tests: buffering, writeback, throttling, crash semantics."""

import pytest

from repro.kernel import CpuAccount, PageCache
from repro.nvme import WriteCmd

from tests.kernel.conftest import drive


def linear_resolver(base):
    return lambda page_idx: base + page_idx


def test_write_read_through_cache(env, cache, account):
    cache.register_file(1, linear_resolver(0))

    def proc():
        yield from cache.write(1, 0, b"hello world", account)
        data = yield from cache.read(1, 0, 11, account)
        return data

    assert drive(env, proc()) == b"hello world"
    assert cache.counters["cache_hits"] > 0


def test_write_unregistered_file_rejected(env, cache, account):
    def proc():
        yield from cache.write(99, 0, b"x", account)

    env.process(proc())
    with pytest.raises(KeyError):
        env.run()


def test_dirty_tracking_and_fsync_persists(env, cache, account, device):
    cache.register_file(1, linear_resolver(0))
    payload = b"A" * (3 * 4096)

    def proc():
        yield from cache.write(1, 0, payload, account)
        assert cache.dirty_bytes == 3 * 4096
        yield from cache.fsync(1, account)
        assert cache.dirty_bytes == 0

    drive(env, proc())
    assert device.peek(0, 3) == payload


def test_crash_loses_unsynced_data(env, cache, account, device):
    cache.register_file(1, linear_resolver(0))

    def proc():
        yield from cache.write(1, 0, b"B" * 4096, account)

    drive(env, proc())
    cache.crash()
    # nothing was fsynced and writeback had no time to run
    assert device.peek(0, 1) == bytes(4096)


def test_background_writeback_eventually_flushes(env, cache, account, device):
    cache.register_file(1, linear_resolver(0))

    def proc():
        yield from cache.write(1, 0, b"C" * 4096, account)
        yield env.timeout(1.0)  # several writeback intervals

    drive(env, proc())
    assert device.peek(0, 1) == b"C" * 4096
    assert cache.dirty_bytes == 0


def test_dirty_throttle_blocks_writer(env, block, costs, device):
    cache = PageCache(env, block, costs, dirty_limit_bytes=4 * 4096,
                      writeback_interval=0.001)
    cache.register_file(1, linear_resolver(0))
    account = CpuAccount(env, "writer")

    def proc():
        for i in range(16):
            yield from cache.write(1, i * 4096, bytes(4096), account)

    drive(env, proc())
    assert cache.counters["throttle_events"] > 0
    assert account.time_in("dirty_throttle") > 0


def test_partial_page_writes_compose(env, cache, account):
    cache.register_file(1, linear_resolver(0))

    def proc():
        yield from cache.write(1, 0, b"aaaa", account)
        yield from cache.write(1, 2, b"BB", account)
        data = yield from cache.read(1, 0, 4, account)
        return data

    assert drive(env, proc()) == b"aaBB"


def test_write_spanning_pages(env, cache, account):
    cache.register_file(1, linear_resolver(0))
    payload = bytes(range(256)) * 33  # 8448 bytes: crosses two boundaries

    def proc():
        yield from cache.write(1, 100, payload, account)
        data = yield from cache.read(1, 100, len(payload), account)
        return data

    assert drive(env, proc()) == payload


def test_read_miss_fetches_from_device(env, cache, account, device, block):
    # put data on the device directly, then read through a cold cache
    payload = b"D" * 4096

    def seed():
        yield from device.submit(WriteCmd(lba=5, nlb=1, data=payload))

    drive(env, seed())
    cache.register_file(2, linear_resolver(5))

    def proc():
        data = yield from cache.read(2, 0, 4096, account)
        return data

    assert drive(env, proc()) == payload
    assert cache.counters["cache_misses"] > 0
    assert account.time_in("ssd_wait") > 0


def test_readahead_prefetches_beyond_request(env, cache, account, device):
    payload = bytes([1]) * 4096 * 8

    def seed():
        yield from device.submit(WriteCmd(lba=10, nlb=8, data=payload))

    drive(env, seed())
    cache.register_file(3, linear_resolver(10))

    def proc():
        yield from cache.read(3, 0, 4096, account, readahead=8)

    drive(env, proc())
    # pages beyond the first are already cached
    assert cache.is_cached(3, 4)


def test_drop_file_discards_pages(env, cache, account):
    cache.register_file(1, linear_resolver(0))

    def proc():
        yield from cache.write(1, 0, b"x" * 4096, account)

    drive(env, proc())
    cache.drop_file(1)
    assert cache.dirty_bytes == 0
    assert not cache.is_cached(1, 0)


def test_lba_runs_split_on_discontiguity():
    resolver = {0: 10, 1: 11, 2: 50, 3: 51, 4: 52}.__getitem__
    runs = list(PageCache._lba_runs(resolver, 0, 5))
    assert runs == [(10, 0, 2), (50, 2, 3)]


def test_fsync_on_clean_file_is_cheap(env, cache, account):
    cache.register_file(1, linear_resolver(0))

    def proc():
        yield from cache.fsync(1, account)

    drive(env, proc())
    assert cache.counters["fsyncs"] == 1


def test_invalid_configs(env, block, costs):
    with pytest.raises(ValueError):
        PageCache(env, block, costs, dirty_limit_bytes=100)
    with pytest.raises(ValueError):
        PageCache(env, block, costs, background_ratio=0.0)
