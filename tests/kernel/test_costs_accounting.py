"""KernelCosts + CpuAccount tests."""

import pytest

from repro.kernel import CpuAccount, KernelCosts
from repro.sim import Environment


def test_copy_time_scales_linearly():
    c = KernelCosts()
    assert c.copy_time(0) == 0.0
    assert c.copy_time(2 * 1024**3) == pytest.approx(2 * 1024**3 / c.copy_bandwidth)


def test_costs_validation():
    with pytest.raises(ValueError):
        KernelCosts(copy_bandwidth=0)
    with pytest.raises(ValueError):
        KernelCosts(syscall_overhead=-1)


def test_account_charge_consumes_sim_time():
    env = Environment()
    acct = CpuAccount(env, "p")

    def proc():
        yield acct.charge("fs", 5e-6)
        yield acct.charge("fs", 3e-6)
        yield acct.charge("copy", 1e-6)

    p = env.process(proc())
    env.run(until=p)
    assert env.now == pytest.approx(9e-6)
    assert acct.time_in("fs") == pytest.approx(8e-6)
    assert acct.time_in("copy") == pytest.approx(1e-6)
    assert acct.total_charged() == pytest.approx(9e-6)


def test_account_note_does_not_consume_time():
    env = Environment()
    acct = CpuAccount(env, "p")
    acct.note("ssd_wait", 1.0)
    assert env.now == 0.0
    assert acct.time_in("ssd_wait") == 1.0


def test_account_share_of():
    env = Environment()
    acct = CpuAccount(env, "p")
    acct.note("fs", 0.12)
    assert acct.share_of("fs", 1.0) == pytest.approx(0.12)
    assert acct.share_of("fs", 0.0) == 0.0


def test_account_rejects_negative():
    env = Environment()
    acct = CpuAccount(env, "p")
    with pytest.raises(ValueError):
        acct.note("x", -1)

    with pytest.raises(ValueError):
        acct.charge("x", -1)


def test_account_breakdown_snapshot():
    env = Environment()
    acct = CpuAccount(env, "p")
    acct.note("a", 1)
    acct.note("b", 2)
    assert acct.breakdown() == {"a": 1, "b": 2}


def test_charge_zero_dt_yields_no_timeout():
    """A dt=0 charge must return None — the caller would pay a
    scheduler round-trip (and a heap event) for nothing."""
    env = Environment()
    acct = CpuAccount(env, "p")
    assert acct.charge("fs", 0.0) is None
    assert acct.time_in("fs") == 0.0
    assert env.now == 0.0
    # and it still registers the component for breakdown purposes
    assert "fs" in acct.breakdown()


def test_charge_zero_between_real_charges_keeps_attribution():
    env = Environment()
    acct = CpuAccount(env, "p")

    def proc():
        yield acct.charge("fs", 2e-6)
        assert acct.charge("fs", 0.0) is None
        yield acct.charge("fs", 3e-6)

    env.run(until=env.process(proc()))
    assert env.now == pytest.approx(5e-6)
    assert acct.time_in("fs") == pytest.approx(5e-6)


def test_note_vs_charge_attribution():
    """note() attributes without consuming time; charge() does both —
    and they accumulate into the same component ledger."""
    env = Environment()
    acct = CpuAccount(env, "p")

    def proc():
        yield acct.charge("ssd_wait", 1e-6)

    env.run(until=env.process(proc()))
    acct.note("ssd_wait", 4e-6)
    assert env.now == pytest.approx(1e-6)  # only the charge advanced time
    assert acct.time_in("ssd_wait") == pytest.approx(5e-6)
    assert acct.total_charged() == pytest.approx(5e-6)
