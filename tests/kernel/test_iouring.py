"""io_uring / passthru ring tests."""

import pytest

from repro.kernel import CpuAccount, IoUringRing, PassthruQueuePair
from repro.nvme import ReadCmd, WriteCmd

from tests.kernel.conftest import drive


def test_submit_and_wait_roundtrip(env, device, costs, account):
    ring = PassthruQueuePair(env, device, costs)
    page = device.lba_size
    payload = b"Q" * page

    def proc():
        yield from ring.submit_and_wait(WriteCmd(lba=0, nlb=1, data=payload),
                                        account)
        data = yield from ring.submit_and_wait(ReadCmd(lba=0, nlb=1), account)
        return data

    assert drive(env, proc()) == payload
    assert ring.counters["submitted"] == 2
    assert ring.counters["completed"] == 2


def test_sqpoll_mode_no_syscalls(env, device, costs, account):
    ring = IoUringRing(env, device, costs, sqpoll=True)

    def proc():
        yield from ring.submit_and_wait(
            WriteCmd(lba=0, nlb=1, data=bytes(device.lba_size)), account)

    drive(env, proc())
    assert ring.counters["enter_syscalls"] == 0
    assert account.time_in("syscall") == 0


def test_non_sqpoll_pays_enter_syscall(env, device, costs, account):
    ring = IoUringRing(env, device, costs, sqpoll=False)

    def proc():
        yield from ring.submit_and_wait(
            WriteCmd(lba=0, nlb=1, data=bytes(device.lba_size)), account)

    drive(env, proc())
    assert ring.counters["enter_syscalls"] == 1
    assert account.time_in("syscall") > 0


def test_async_submission_overlaps_with_compute(env, device, costs, account):
    """Submit, compute, then reap: I/O and CPU overlap."""
    ring = PassthruQueuePair(env, device, costs)
    page = device.lba_size

    def proc():
        ev = yield from ring.write_pages(0, b"b" * page, account)
        t_submit = env.now
        yield env.timeout(50e-6)  # compute while the write is in flight
        yield from ring.wait(ev, account)
        return env.now - t_submit

    elapsed = drive(env, proc())
    # total is ~max(compute, io), not their sum
    assert elapsed == pytest.approx(50e-6, rel=0.2)


def test_ring_depth_backpressure(env, device, costs, account):
    ring = IoUringRing(env, device, costs, depth=1)
    page = device.lba_size
    events = []

    def proc():
        for i in range(3):
            ev = yield from ring.submit(
                WriteCmd(lba=i, nlb=1, data=bytes(page)), account)
            events.append(ev)
        for ev in events:
            yield from ring.wait(ev, account)

    drive(env, proc())
    assert ring.counters["completed"] == 3


def test_write_pages_requires_alignment(env, device, costs, account):
    ring = PassthruQueuePair(env, device, costs)

    def proc():
        yield from ring.write_pages(0, b"unaligned", account)

    env.process(proc())
    with pytest.raises(ValueError):
        env.run()


def test_pid_flows_to_fdp_device(env, costs, account):
    from repro.flash import FlashGeometry
    from repro.nvme import NvmeDevice
    from tests.kernel.conftest import FAST_NAND, SMALL_FTL

    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=24,
                      pages_per_block=16)
    dev = NvmeDevice(env, g, FAST_NAND, SMALL_FTL, fdp=True)
    ring = PassthruQueuePair(env, dev, costs)
    page = dev.lba_size

    # arbitrary in-range PID: the test is the PID→stream plumbing itself
    def proc():
        ev = yield from ring.write_pages(0, bytes(page), account, pid=2)  # slimlint: ignore[SLIM002]
        yield from ring.wait(ev, account)

    drive(env, proc())
    ppn = dev.ftl.mapped_ppn(0)  # slimlint: ignore[SLIM006]
    assert dev.ftl.segment_stream(dev.geometry.segment_of_page(ppn)) == 2  # slimlint: ignore[SLIM006]


def test_deallocate_verb(env, device, costs, account):
    ring = PassthruQueuePair(env, device, costs)
    page = device.lba_size

    def proc():
        ev = yield from ring.write_pages(4, b"d" * page, account)
        yield from ring.wait(ev, account)
        ev = yield from ring.deallocate(4, 1, account)
        yield from ring.wait(ev, account)

    drive(env, proc())
    assert device.ftl.mapped_ppn(4) == -1  # slimlint: ignore[SLIM006]


def test_device_error_surfaces_as_cqe_failure(env, device, costs, account):
    ring = PassthruQueuePair(env, device, costs)

    def proc():
        ev = yield from ring.submit(ReadCmd(lba=device.num_lbas, nlb=1), account)
        with pytest.raises(ValueError):
            yield from ring.wait(ev, account)

    p = env.process(proc())
    env.run(until=p)


def test_separate_rings_have_independent_depth(env, device, costs):
    a1, a2 = CpuAccount(env, "p1"), CpuAccount(env, "p2")
    ring1 = IoUringRing(env, device, costs, depth=1, name="r1")
    ring2 = IoUringRing(env, device, costs, depth=1, name="r2")
    page = device.lba_size
    done = []

    def user(ring, acct, lba, tag):
        yield from ring.submit_and_wait(
            WriteCmd(lba=lba, nlb=1, data=bytes(page)), acct)
        done.append(tag)

    env.process(user(ring1, a1, 0, "r1"))
    env.process(user(ring2, a2, 1, "r2"))
    env.run()
    assert sorted(done) == ["r1", "r2"]


def test_invalid_depth(env, device, costs):
    with pytest.raises(ValueError):
        IoUringRing(env, device, costs, depth=0)
