"""Block layer scheduler tests."""

import pytest

from repro.kernel import BlockLayer, SCHED_SYNC_PRIORITY
from repro.nvme import WriteCmd

from tests.kernel.conftest import drive


def test_submit_roundtrip(env, block, device):
    page = device.lba_size

    def proc():
        yield from block.submit(WriteCmd(lba=0, nlb=1, data=bytes(page)))

    drive(env, proc())
    assert device.stats.write_cmds == 1
    assert block.counters["async_cmds"] == 1


def test_sync_flag_counted(env, block, device):
    def proc():
        yield from block.submit(
            WriteCmd(lba=0, nlb=1, data=bytes(device.lba_size)), sync=True
        )

    drive(env, proc())
    assert block.counters["sync_cmds"] == 1


def test_inflight_limit_queues(env, device, costs):
    blk = BlockLayer(env, device, costs, inflight_limit=1)
    page = device.lba_size
    done = []

    def proc(i):
        yield from blk.submit(WriteCmd(lba=i, nlb=1, data=bytes(page)))
        done.append((i, env.now))

    for i in range(3):
        env.process(proc(i))
    env.run()
    # strictly serialized: each completion later than the previous
    times = [t for _, t in done]
    assert times == sorted(times)
    assert len(set(times)) == 3
    assert len(blk.queue_latency) == 3


def test_sync_priority_scheduler_reorders(env, device, costs):
    blk = BlockLayer(env, device, costs, scheduler=SCHED_SYNC_PRIORITY,
                     inflight_limit=1)
    page = device.lba_size
    order = []

    def occupier():
        yield from blk.submit(WriteCmd(lba=0, nlb=1, data=bytes(page)))
        order.append("first")

    def async_waiter():
        yield env.timeout(1e-7)
        yield from blk.submit(WriteCmd(lba=1, nlb=1, data=bytes(page)))
        order.append("async")

    def sync_waiter():
        yield env.timeout(2e-7)  # arrives after the async request
        yield from blk.submit(WriteCmd(lba=2, nlb=1, data=bytes(page)),
                              sync=True)
        order.append("sync")

    env.process(occupier())
    env.process(async_waiter())
    env.process(sync_waiter())
    env.run()
    assert order == ["first", "sync", "async"]


def test_none_scheduler_is_fifo(env, device, costs):
    blk = BlockLayer(env, device, costs, scheduler="none", inflight_limit=1)
    page = device.lba_size
    order = []

    def submitter(tag, delay, sync):
        yield env.timeout(delay)
        yield from blk.submit(WriteCmd(lba=len(order), nlb=1, data=bytes(page)),
                              sync=sync)
        order.append(tag)

    env.process(submitter("a", 0, False))
    env.process(submitter("b", 1e-7, True))   # sync, but FIFO ignores it
    env.process(submitter("c", 2e-7, False))
    env.run()
    assert order == ["a", "b", "c"]


def test_invalid_config(env, device, costs):
    with pytest.raises(ValueError):
        BlockLayer(env, device, costs, scheduler="bogus")
    with pytest.raises(ValueError):
        BlockLayer(env, device, costs, inflight_limit=0)


def test_deadline_scheduler_prefers_reads(env, device, costs):
    from repro.kernel import SCHED_DEADLINE
    from repro.nvme import ReadCmd

    blk = BlockLayer(env, device, costs, scheduler=SCHED_DEADLINE,
                     inflight_limit=1)
    page = device.lba_size
    order = []

    def occupier():
        yield from blk.submit(WriteCmd(lba=0, nlb=1, data=bytes(page)))
        order.append("first")

    def writer():
        yield env.timeout(1e-7)
        yield from blk.submit(WriteCmd(lba=1, nlb=1, data=bytes(page)))
        order.append("write")

    def reader():
        yield env.timeout(2e-7)  # arrives after the queued write
        yield from blk.submit(ReadCmd(lba=0, nlb=1))
        order.append("read")

    env.process(occupier())
    env.process(writer())
    env.process(reader())
    env.run()
    assert order == ["first", "read", "write"]


def test_deadline_scheduler_bounds_write_starvation(env, device, costs):
    from repro.kernel import SCHED_DEADLINE
    from repro.nvme import ReadCmd

    blk = BlockLayer(env, device, costs, scheduler=SCHED_DEADLINE,
                     inflight_limit=1, write_deadline=1e-4)
    page = device.lba_size
    done = {}

    def write_victim():
        yield env.timeout(1e-7)
        yield from blk.submit(WriteCmd(lba=1, nlb=1, data=bytes(page)))
        done["write"] = env.now

    def read_storm():
        for i in range(200):
            yield env.timeout(1e-7)
            env.process(one_read(i))

    def one_read(i):
        yield from blk.submit(ReadCmd(lba=0, nlb=1))

    def occupier():
        yield from blk.submit(WriteCmd(lba=0, nlb=1, data=bytes(page)))

    env.process(occupier())
    env.process(write_victim())
    env.process(read_storm())
    env.run()
    # without promotion the write would wait for all 200 reads
    assert done["write"] < 150 * 2e-6 * 200
    assert blk.counters["deadline_promotions"] >= 1


def test_deadline_validation(env, device, costs):
    with pytest.raises(ValueError):
        BlockLayer(env, device, costs, scheduler="mq-deadline",
                   write_deadline=0)
