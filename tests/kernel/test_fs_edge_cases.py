"""Filesystem edge cases: fragmentation, journal wrap, attribution."""

import pytest

from repro.kernel import CpuAccount, Ext4, F2fs

from tests.kernel.conftest import drive


@pytest.fixture
def fs(env, block, cache):
    return F2fs(env, block, cache, extent_pages=4)


def test_fragmented_allocation_still_correct(env, fs, account):
    """Interleaved create/delete fragments the free list; files still
    round-trip through non-contiguous extents."""
    keep = []
    for i in range(6):
        f = fs.create(f"tmp{i}")

        def w(f=f, i=i):
            yield from f.write(bytes([i]) * 4 * 4096, account)

        drive(env, w())
        keep.append(f)
    # free every other file -> holes
    for i in (0, 2, 4):
        fs.unlink(f"tmp{i}")
    env.run()
    big = fs.create("big")
    payload = bytes(range(256)) * (14 * 4096 // 256)

    def wbig():
        yield from big.write(payload, account)
        data = yield from big.read(0, len(payload), account)
        return data

    assert drive(env, wbig()) == payload
    assert len(big.inode.extents) > 1  # actually fragmented


def test_journal_cursor_wraps(env, fs, account):
    f = fs.create("x")

    def proc():
        yield from f.write(b"d" * 100, account)
        for _ in range(fs._journal_pages + 5):
            yield from f.fsync(account)

    drive(env, proc())
    # wrapped: cursor stayed within the journal area
    assert 0 <= fs._journal_cursor < fs._journal_pages
    assert fs.counters["journal_commits"] == fs._journal_pages + 5


def test_journal_area_excluded_from_allocation(env, fs, account):
    """File extents never collide with the journal area."""
    f = fs.create("data")

    def proc():
        yield from f.write(bytes(50 * 4096), account)

    drive(env, proc())
    for lba, n in f.inode.extents:
        assert lba + n <= fs._journal_base


def test_ext4_journal_writes_more_than_f2fs(env, device, costs):
    from repro.kernel import BlockLayer, PageCache
    from repro.flash import FlashGeometry
    from repro.nvme import NvmeDevice
    from repro.sim import Environment
    from tests.kernel.conftest import FAST_NAND, SMALL_FTL

    def journal_pages(fs_cls):
        env2 = Environment()
        g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=24,
                          pages_per_block=16)
        dev = NvmeDevice(env2, g, FAST_NAND, SMALL_FTL)
        blk = BlockLayer(env2, dev, costs)
        cache = PageCache(env2, blk, costs, dirty_limit_bytes=64 * 4096)
        fs = fs_cls(env2, blk, cache, extent_pages=8)
        acct = CpuAccount(env2, "w")
        f = fs.create("f")

        def proc():
            for _ in range(10):
                yield from f.write(b"x" * 512, acct)
                yield from f.fsync(acct)

        p = env2.process(proc())
        env2.run(until=p)
        return fs.counters["journal_pages"]

    assert journal_pages(Ext4) > journal_pages(F2fs)


def test_fsync_ssd_wait_attributed(env, fs, account):
    f = fs.create("x")

    def proc():
        yield from f.write(b"z" * 4096, account)
        yield from f.fsync(account)

    drive(env, proc())
    assert account.time_in("ssd_wait") > 0


def test_reopen_after_append_continues_at_end(env, fs, account):
    f1 = fs.create("log")

    def w1():
        yield from f1.write(b"first", account)

    drive(env, w1())
    f2 = fs.open("log")
    f2.seek_end()

    def w2():
        yield from f2.write(b"second", account)
        data = yield from f2.read(0, 11, account)
        return data

    assert drive(env, w2()) == b"firstsecond"
