"""Page cache vs a reference byte model, under random write/read/fsync
sequences, including crash points."""

from hypothesis import given, settings, strategies as st

from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.kernel import BlockLayer, CpuAccount, KernelCosts, PageCache
from repro.nvme import NvmeDevice
from repro.sim import Environment

FAST = NandTiming(page_read=1e-6, page_program=2e-6, block_erase=10e-6,
                  channel_transfer=0.0)
CFG = FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                gc_reserve_segments=2)

FILE_PAGES = 8
FILE_BYTES = FILE_PAGES * 4096


def world():
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=24,
                      pages_per_block=16)
    dev = NvmeDevice(env, g, FAST, CFG)
    blk = BlockLayer(env, dev, KernelCosts())
    cache = PageCache(env, blk, KernelCosts(),
                      dirty_limit_bytes=4 * 1024 * 1024)
    cache.register_file(1, lambda idx: 10 + idx)
    return env, dev, cache


@st.composite
def ops(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    out = []
    for _ in range(n):
        kind = draw(st.sampled_from(["write", "write", "read", "fsync"]))
        if kind == "write":
            off = draw(st.integers(min_value=0, max_value=FILE_BYTES - 1))
            size = draw(st.integers(min_value=1,
                                    max_value=min(5000, FILE_BYTES - off)))
            fill = draw(st.integers(min_value=1, max_value=255))
            out.append(("write", off, bytes([fill]) * size))
        elif kind == "read":
            off = draw(st.integers(min_value=0, max_value=FILE_BYTES - 1))
            size = draw(st.integers(min_value=0,
                                    max_value=FILE_BYTES - off))
            out.append(("read", off, size))
        else:
            out.append(("fsync",))
    return out


@given(ops())
@settings(max_examples=40, deadline=None)
def test_cache_reads_match_reference(sequence):
    env, dev, cache = world()
    acct = CpuAccount(env, "p")
    reference = bytearray(FILE_BYTES)

    def driver():
        for op in sequence:
            if op[0] == "write":
                _, off, data = op
                reference[off:off + len(data)] = data
                yield from cache.write(1, off, data, acct)
            elif op[0] == "read":
                _, off, size = op
                got = yield from cache.read(1, off, size, acct)
                assert got == bytes(reference[off:off + size])
            else:
                yield from cache.fsync(1, acct)

    env.run(until=env.process(driver()))


@given(ops())
@settings(max_examples=30, deadline=None)
def test_fsync_then_crash_preserves_everything(sequence):
    """After an fsync, a crash must lose nothing written before it."""
    env, dev, cache = world()
    acct = CpuAccount(env, "p")
    reference = bytearray(FILE_BYTES)

    def driver():
        for op in sequence:
            if op[0] == "write":
                _, off, data = op
                reference[off:off + len(data)] = data
                yield from cache.write(1, off, data, acct)
            elif op[0] == "fsync":
                yield from cache.fsync(1, acct)
        yield from cache.fsync(1, acct)  # final barrier

    env.run(until=env.process(driver()))
    cache.crash()
    assert dev.peek(10, FILE_PAGES) == bytes(reference)
