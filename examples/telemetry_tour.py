#!/usr/bin/env python3
"""Telemetry tour: the same workload on both systems, fully recorded.

Runs one redis-benchmark-shaped workload (with a mid-run snapshot and a
final recovery) against the baseline kernel path and against SlimIO,
with a :class:`repro.obs.MetricsRegistry` attached to every layer.
Each run is then exported three ways:

* ``<name>.jsonl``       — the full record stream (spans, events,
  instruments); feed it to ``python -m repro.obs summarize``
* ``<name>.prom``        — Prometheus exposition text
* ``<name>.trace.json``  — Chrome trace-event JSON; open it at
  ``chrome://tracing`` or https://ui.perfetto.dev

and the script closes with a side-by-side comparison of the metrics
the paper's argument hangs on: write amplification, WAL-buffer stalls,
and how many submissions needed a syscall.

    PYTHONPATH=src python examples/telemetry_tour.py [output_dir]
"""

import sys
from pathlib import Path

from repro import SnapshotKind, build_baseline, build_slimio
from repro.bench.scales import TEST_SCALE
from repro.obs import prometheus_text, write_chrome_trace, write_jsonl
from repro.workloads import RedisBenchWorkload


def run(name, builder, scale, outdir):
    system = builder(config=scale.system_config(gc_pressure=False))
    registry = system.attach_obs()

    workload = RedisBenchWorkload(
        clients=16, total_ops=6000, key_count=400, value_size=4096,
        snapshot_at_fraction=0.5,
    )
    report = workload.run(system)
    system.env.run(
        until=system.env.process(system.recover(SnapshotKind.WAL_TRIGGERED))
    )
    system.stop()

    jsonl = outdir / f"{name}.jsonl"
    nrec = write_jsonl(registry, jsonl)
    (outdir / f"{name}.prom").write_text(prometheus_text(registry))
    nevt = write_chrome_trace(registry, outdir / f"{name}.trace.json")
    print(f"  {name}: {nrec} jsonl records, {nevt} trace events "
          f"-> {jsonl}")
    return report, registry


def syscall_share(registry):
    """Fraction of I/O submissions that crossed the kernel boundary.

    The baseline pays a syscall per submission by construction (every
    write is ``write()``/``fsync()``); SlimIO only pays one when SQPOLL
    is asleep, so its share is enter-syscalls over ring submissions.
    """
    submitted = enters = 0.0
    for inst in registry.instruments():
        if inst.name == "uring_submitted_total":
            submitted += inst.value
        elif inst.name == "uring_enter_syscalls_total":
            enters += inst.value
    if submitted == 0:
        return 1.0  # no rings: the classic-syscall path
    return enters / submitted


def counter_sum(registry, name):
    return sum(i.value for i in registry.instruments() if i.name == name)


def main():
    outdir = Path(sys.argv[1] if len(sys.argv) > 1 else "out/telemetry_out")
    outdir.mkdir(parents=True, exist_ok=True)
    scale = TEST_SCALE
    print("Telemetry tour: identical workload, both I/O paths, "
          "every layer recorded\n")

    runs = {}
    for name, builder in (("baseline", build_baseline),
                          ("slimio", build_slimio)):
        runs[name] = run(name, builder, scale, outdir)

    print(f"\n{'metric':28s} {'baseline':>12s} {'slimio':>12s}")
    rows = [
        ("write amplification",
         lambda rep, reg: f"{reg.gauge('ftl_waf').value:.2f}"),
        ("WAL-buffer stalls",
         lambda rep, reg:
         f"{counter_sum(reg, 'server_wal_buffer_stalls_total'):.0f}"),
        ("syscall share of submits",
         lambda rep, reg: f"{100 * syscall_share(reg):.1f}%"),
        ("GC pages copied",
         lambda rep, reg:
         f"{counter_sum(reg, 'ftl_gc_pages_copied_total'):.0f}"),
        ("avg throughput (req/s)",
         lambda rep, reg: f"{rep.rps:,.0f}"),
        ("SET p999 (ms)",
         lambda rep, reg: f"{rep.set_p999 * 1e3:.2f}"),
    ]
    for label, fmt in rows:
        base, slim = fmt(*runs["baseline"]), fmt(*runs["slimio"])
        print(f"{label:28s} {base:>12s} {slim:>12s}")

    print(f"\nNext: python -m repro.obs summarize {outdir}/slimio.jsonl")
    print(f"      python -m repro.obs trace {outdir}/slimio.jsonl")


if __name__ == "__main__":
    main()
