#!/usr/bin/env python3
"""Design-space walk: which piece of SlimIO buys what?

Runs the same write-heavy workload across a ladder of configurations
between stock Redis and full SlimIO, isolating each design decision
from §4 of the paper:

    baseline            traditional path (F2FS, page cache, scheduler)
    passthru, shared    io_uring passthru but ONE ring for WAL+snapshot
    passthru, split     separate SQ/CQ pairs (write isolation, §4.1)
    + no SQPOLL         split rings, but submissions pay a syscall
    + FDP               split rings + placement IDs (§4.3) = full SlimIO

    python examples/design_space.py
"""

from repro import LoggingPolicy, build_baseline, build_slimio
from repro.bench.scales import TEST_SCALE
from repro.workloads import RedisBenchWorkload

LADDER = [
    ("baseline (F2FS)", build_baseline, {}),
    ("passthru, shared ring", build_slimio,
     dict(fdp=False, shared_ring=True)),
    ("passthru, split rings", build_slimio, dict(fdp=False)),
    ("split rings, no SQPOLL", build_slimio, dict(fdp=False, sqpoll=False)),
    ("full SlimIO (FDP)", build_slimio, {}),
]


def main():
    scale = TEST_SCALE
    print(f"{'configuration':24s} {'req/s':>9s} {'p999 (ms)':>10s} "
          f"{'snap (ms)':>10s} {'WAF':>6s}")
    print("-" * 64)
    for name, builder, overrides in LADDER:
        system = builder(config=scale.system_config(
            gc_pressure=True, policy=LoggingPolicy.ALWAYS, **overrides))
        workload = RedisBenchWorkload(
            clients=16, total_ops=3000, key_count=400, value_size=4096,
            snapshot_at_fraction=0.5)
        rep = workload.run(system)
        system.stop()
        print(f"{name:24s} {rep.rps:>9,.0f} {rep.set_p999 * 1e3:>10.2f} "
              f"{rep.mean_snapshot_time * 1e3:>10.1f} {rep.waf:>6.2f}")
    print("\nEach rung isolates one §4 design decision; Always-Log is "
          "used so the WAL path is on the critical path of every SET.")


if __name__ == "__main__":
    main()
