#!/usr/bin/env python3
"""ML-workflow scenario: a feature store between pipeline stages.

The paper's introduction cites machine-learning HPC workflows that use
the IMDB to share state between stages (preprocessing → training →
evaluation). This example models a training loop that continuously
updates feature vectors and embedding rows (a YCSB-A-like 50/50
read/update mix over a zipfian-hot keyspace), while the operator takes
an On-Demand snapshot before a risky job — the paper's point-in-time
backup use case — and the WAL-Snapshot trigger manages log growth
automatically.

    python examples/ml_feature_store.py
"""

from repro import SnapshotKind, build_slimio
from repro.bench.scales import TEST_SCALE
from repro.workloads import YcsbAWorkload


def main():
    scale = TEST_SCALE
    system = build_slimio(config=scale.system_config(gc_pressure=False))
    workload = YcsbAWorkload(
        clients=8, total_ops=6000, key_count=1000, value_size=2048,
        snapshot_at_fraction=0.5,  # operator backup before "deploying"
    )
    report = workload.run(system)

    print("feature-store run (YCSB-A shape, zipfian-hot keys):")
    print(f"  throughput            {report.rps:,.0f} ops/s")
    print(f"  GET p999              {report.get_p999 * 1e3:.3f} ms")
    print(f"  SET p999              {report.set_p999 * 1e3:.3f} ms")
    print(f"  snapshots taken       {report.snapshot_count} "
          f"(mean {report.mean_snapshot_time * 1e3:.1f} ms each)")
    print(f"  memory steady/peak    {report.steady_memory / 1e6:.1f} / "
          f"{report.peak_memory / 1e6:.1f} MB")

    # the backup is immediately restorable
    result = system.env.run(until=system.env.process(
        system.recover(SnapshotKind.ON_DEMAND)))
    system.stop()
    print(f"  backup restore        {len(result.data):,} records in "
          f"{result.duration * 1e3:.1f} ms "
          f"({result.throughput / 1e6:.0f} MB/s)")
    assert len(result.data) > 0


if __name__ == "__main__":
    main()
