#!/usr/bin/env python3
"""Cluster tour: hash-slot shards on one shared 8-PID FDP device.

Stands up a 4-shard SlimIO cluster (one simulated device, per-shard
LBA partitions, PIDs budgeted by the allocator's sharing policy), runs
a short YCSB-A through the slot router, prints per-shard and aggregate
results, then live-migrates half of one shard's slot range to another
shard while clients keep running — and proves the moved keys are still
served afterwards.

    python examples/cluster_tour.py
"""

from repro.bench.scales import TEST_SCALE
from repro.cluster import (
    NUM_SLOTS,
    build_cluster,
    key_hash_slot,
    migrate_slots,
)
from repro.imdb import ClientOp
from repro.workloads import ClusterWorkload


def main():
    scale = TEST_SCALE
    cluster = build_cluster(
        config=None,
        num_shards=4,
        system=scale.system_config(gc_pressure=False),
    )
    alloc = cluster.pid_report()
    print(f"4 shards on one {cluster.device.num_pids}-PID device "
          f"-> PID mode {alloc['mode']!r}")
    for shard in cluster:
        lo, hi = cluster.slot_map.shard_range(shard.index)
        print(f"  {shard.name}: slots [{lo:5d}, {hi:5d})  "
              f"pids {sorted(shard.policy.pids)}")

    # keys route by CRC16 slot; hash tags pin related keys together
    for key in (b"user:1001", b"{order:77}:items", b"{order:77}:total"):
        slot = key_hash_slot(key)
        shard = cluster.router.shard_for_key(key)
        print(f"  {key.decode():18s} -> slot {slot:5d} -> {shard.name}")

    # a short YCSB-A through the router
    workload = ClusterWorkload(scale.ycsb_a(
        total_ops=6000, key_count=600, snapshot_at_fraction=0.5,
    ))
    report = workload.run(cluster)
    agg = report.aggregate
    print(f"\nYCSB-A, {agg.ops} ops over {report.num_shards} shards: "
          f"{agg.rps:,.0f} req/s aggregate, "
          f"SET p999 {agg.set_p999 * 1e6:.0f} us, WAF {agg.waf:.2f}")
    for name, rep, routed in zip(report.shard_names, report.per_shard,
                                 report.routed):
        print(f"  {name}: {routed:5d} ops routed, "
              f"{rep.rps:>8,.0f} req/s, WAF {rep.waf:.2f}")

    # live resharding: move the top half of shard 3's range to shard 0
    lo, hi = cluster.slot_map.shard_range(3)
    mid = (lo + hi) // 2
    probe = next(
        k for k, _ in cluster[3].server.store.snapshot_items()
        if mid <= key_hash_slot(k) < hi
    )
    mig = cluster.env.run(until=cluster.env.process(
        migrate_slots(cluster, mid, hi, dst=0), name="reshard",
    ))
    print(f"\nmigrated slots [{mid}, {hi}) shard3 -> shard0: "
          f"{mig.keys_migrated} keys ({mig.keys_forwarded} forwarded "
          f"in-flight), {mig.slots_moved}/{NUM_SLOTS} slots, "
          f"{mig.duration * 1e3:.1f} ms simulated")

    owner = cluster.router.shard_for_key(probe)
    value = cluster.env.run(until=cluster.env.process(
        cluster.router.execute(ClientOp("GET", probe)), name="probe-get",
    ))
    print(f"probe key {probe!r}: now owned by {owner.name}, "
          f"GET -> {'hit' if value is not None else 'MISS'}")
    assert owner.index == 0 and value is not None
    cluster.stop()


if __name__ == "__main__":
    main()
