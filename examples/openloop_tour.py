#!/usr/bin/env python3
"""Open-loop tour: offered load, backpressure, and coordinated omission.

Part 1 compares the three arrival processes (Poisson, MMPP bursts,
diurnal cycle) by binning one schedule each. Part 2 sweeps offered
load against a real SlimIO system through the connection front end and
prints the latency curve with its knee — the first rate where p999
blows up, a point a closed-loop harness cannot see. Part 3 replays the
overload rate under all three backpressure policies (BLOCK / SHED /
DROP) and shows what each one trades. Part 4 demonstrates coordinated
omission itself: the same closed-loop run measured naively vs from
each request's intended start (wrk2-style), past capacity.

    PYTHONPATH=src python examples/openloop_tour.py
"""

from repro import build_slimio
from repro.bench.scales import TEST_SCALE
from repro.imdb import ClientOp
from repro.net import (
    MIXES,
    BackpressurePolicy,
    DiurnalArrivals,
    MmppArrivals,
    NetConfig,
    NetFrontend,
    OpStream,
    PoissonArrivals,
    detect_knee,
    run_open_loop,
    summarize_point,
)
from repro.workloads import ClosedLoopWorkload
from repro.workloads.keys import make_key, make_value

KEYS = 400
VALUE = 1024
DURATION = 0.05


def part1_arrivals():
    print("=" * 64)
    print("Part 1: arrival processes (same mean rate, 10ms bins)")
    print("=" * 64)
    procs = [
        ("poisson", PoissonArrivals(2_000, seed=7)),
        ("mmpp 8x", MmppArrivals(2_000, burst=8.0, dwell_calm=0.02,
                                 dwell_burst=0.005, seed=7)),
        ("diurnal", DiurnalArrivals(2_000, amp=0.9, period=0.1, seed=7)),
    ]
    for name, proc in procs:
        times = proc.times(0.1, t0=0.0)
        bins = [0] * 10
        for t in times:
            bins[min(int(t / 0.01), 9)] += 1
        bar = " ".join(f"{b:4d}" for b in bins)
        print(f"  {name:8s} n={len(times):4d}  {bar}")
    print("  (MMPP piles arrivals into bursts; the diurnal cycle has a")
    print("   rush hour and a trough — same offered total either way)")


def _system():
    system = build_slimio(
        config=TEST_SCALE.system_config(gc_pressure=False, trigger=False))
    env = system.env

    def filler():
        for i in range(KEYS):
            key = make_key(i)
            yield from system.server.execute(
                ClientOp("SET", key, make_value(key, VALUE)))

    env.run(until=env.process(filler(), name="fill"))
    system.server.reset_metrics()
    return system


def _drive(rate, policy="block", pipeline=8):
    system = _system()
    env = system.env
    fe = NetFrontend(env, system.server, NetConfig(
        pipeline_depth=pipeline, conn_queue=16, max_inflight=128,
        policy=BackpressurePolicy(policy)))
    times = PoissonArrivals(rate, seed=17).times(DURATION, t0=env.now)
    stream = OpStream(MIXES["ycsb_a"], len(times), KEYS,
                      value_size=VALUE, seed=11)
    run_open_loop(env, fe, stream, times, clients=16,
                  horizon=DURATION * 2 + 0.05)
    return summarize_point(fe, rate, len(times), DURATION), fe


def part2_sweep():
    print()
    print("=" * 64)
    print("Part 2: latency vs offered load (Poisson, YCSB-A)")
    print("=" * 64)
    print(f"  {'offered/s':>10} {'done':>6} {'p50 us':>8} "
          f"{'p99 us':>8} {'p999 us':>9}")
    points = []
    for rate in (10_000, 25_000, 50_000, 100_000, 150_000):
        p, _ = _drive(rate)
        points.append(p)
        print(f"  {rate:>10,} {p.completed:>6} {p.p50 * 1e6:>8.1f} "
              f"{p.p99 * 1e6:>8.1f} {p.p999 * 1e6:>9.1f}")
    knee = detect_knee(points, factor=4.0)
    print(f"  knee (first p999 blow-up): {knee:,}/s — past capacity the"
          if knee else "  no knee in range —",
          "open loop keeps offering load and the backlog becomes latency")
    return knee or 150_000


def part3_policies(rate):
    print()
    print("=" * 64)
    print(f"Part 3: backpressure policies at {rate:,}/s, deep pipelining")
    print("=" * 64)
    print(f"  {'policy':>6} {'done':>6} {'shed':>6} {'dropped':>8} "
          f"{'p999 ms':>8}")
    for policy in ("block", "shed", "drop"):
        p, fe = _drive(rate, policy=policy, pipeline=32)
        print(f"  {policy:>6} {p.completed:>6} {p.shed:>6} "
              f"{p.dropped_cmds:>8} {p.p999 * 1e3:>8.2f}")
    print("  BLOCK loses nothing and pays in latency; SHED answers")
    print("  -BUSY fast and keeps the completed tail lower; DROP")
    print("  closes connections (accept-overflow shaped)")


def part4_omission():
    print()
    print("=" * 64)
    print("Part 4: coordinated omission in a closed loop, past capacity")
    print("=" * 64)
    system = _system()
    report = ClosedLoopWorkload(
        clients=8, total_ops=3000, key_count=KEYS, value_size=VALUE,
        target_rate=2_000_000,  # far beyond capacity: every start is late
    ).run(system)
    print(f"  naive SET p999 (measured from actual start): "
          f"{report.set_p999 * 1e6:>10.1f} us")
    print(f"  corrected SET p999 (from intended start):    "
          f"{report.corrected_set_p999 * 1e6:>10.1f} us")
    print(f"  late starts: {report.late_starts} — the naive number only "
          f"times the server,")
    print("  the corrected one also charges the queueing the schedule "
          "actually saw")


def main():
    part1_arrivals()
    knee = part2_sweep()
    part3_policies(knee)
    part4_omission()


if __name__ == "__main__":
    main()
