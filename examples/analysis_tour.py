#!/usr/bin/env python3
"""slimcheck tour: the linter and the runtime sanitizers, end to end.

Part 1 runs **slimlint** over a deliberately broken snippet and prints
the diagnostics it produces (then shows a pragma silencing one of
them). Part 2 stands up a sanitized SlimIO system, runs a clean
workload, and then injects a write into a *published* snapshot slot —
the exact kind of silent placement bug that would corrupt the last
durable image while every test still passes — and shows the sanitizer
rejecting it at the device boundary.

    PYTHONPATH=src python examples/analysis_tour.py
"""

from repro import SystemConfig, build_slimio
from repro.analysis import SanitizerError, lint_source
from repro.flash import FlashGeometry
from repro.imdb import ClientOp
from repro.nvme import WriteCmd

BROKEN = '''\
import time
import random

def resync(device, cmd):
    started = time.time()            # wall clock in a simulation
    jitter = random.random()         # unseeded randomness
    yield from device.submit(cmd)    # bypasses the kernel path
    return started + jitter
'''

FIXED_LINE = ("    yield from device.submit(cmd)"
              "  # slimlint: ignore[SLIM001]\n")


def part1_linter():
    print("=" * 64)
    print("Part 1: slimlint on a broken snippet (pretend package: imdb)")
    print("=" * 64)
    result = lint_source(BROKEN, path="snippet.py", package="imdb")
    for finding in result.findings:
        print(f"  {finding.render()}")
    assert not result.ok and len(result.findings) == 3

    print("\nafter adding '# slimlint: ignore[SLIM001]' to the submit:")
    patched = BROKEN.replace(
        "    yield from device.submit(cmd)    # bypasses the kernel path\n",
        FIXED_LINE,
    )
    result = lint_source(patched, path="snippet.py", package="imdb")
    for finding in result.findings:
        print(f"  {finding.render()}")
    print(f"  ({result.suppressed} suppressed — the other two rules "
          f"still fire)")
    assert len(result.findings) == 2 and result.suppressed == 1


def part2_sanitizer():
    print()
    print("=" * 64)
    print("Part 2: the runtime sanitizer at the device boundary")
    print("=" * 64)
    system = build_slimio(
        config=SystemConfig(
            geometry=FlashGeometry(channels=1, dies_per_channel=2,
                                   blocks_per_die=48, pages_per_block=16),
            wal_flush_interval=0.01,
            sanitize=True,
        )
    )
    env = system.env

    def workload():
        for i in range(60):
            yield from system.server.execute(
                ClientOp("SET", b"key:%d" % i, b"v" * 512))

    env.run(until=env.process(workload()))
    env.run(until=env.now + 0.1)  # let the periodic flusher drain
    summary = system.sanitizer.summary()
    print(f"clean workload: {summary['checks']} commands checked, "
          f"{summary['violations']} violations, WAF={system.waf:.2f}")

    # now impersonate a buggy snapshot path: write into a slot that
    # holds (or will hold) a *published* image instead of the reserve
    slots = system.space.slots
    victim = next(i for i in range(3) if i != slots.reserve_slot)
    base, _cap = system.space.slot_extent(victim)
    rogue = WriteCmd(
        lba=base, nlb=1, data=b"\x00" * system.device.lba_size,
        pid=system.config.placement.wal_snapshot_pid,
    )
    print(f"\ninjecting a snapshot write into slot {victim} "
          f"(reserve is {slots.reserve_slot})...")

    def inject():
        yield from system.device.submit(rogue)  # slimlint: ignore[SLIM001]

    try:
        env.run(until=env.process(inject()))
    except SanitizerError as exc:
        print(f"caught: {exc}")
    else:
        raise SystemExit("sanitizer failed to catch the rogue write!")
    system.stop()


def main():
    part1_linter()
    part2_sanitizer()
    print("\ntour complete — see docs/ANALYSIS.md for the full rule "
          "catalogue")


if __name__ == "__main__":
    main()
