#!/usr/bin/env python3
"""Fault-injection tour: torn writes, ring retries, and a crash matrix.

Three short acts, all seeded and deterministic:

1. **Torn write** — wrap the NVMe device in a
   :class:`repro.faults.FaultyDevice`, cut power in the middle of a
   4-page command, and inspect which bytes survived under both torn
   models (in-order ``prefix`` vs out-of-order ``shuffle``).
2. **Transient errors** — force NVMe failures on a passthru ring and
   watch the bounded retry-with-backoff absorb them (and give up when
   the budget runs out).
3. **Crash matrix** — the full harness on a small campaign: replay one
   workload, kill power at a dozen page-write boundaries, recover on
   each surviving image, and check the recovered keyspace against the
   acknowledged-write prefix. Closes with the transient-error lane.

    PYTHONPATH=src python examples/faults_tour.py
"""

from repro.faults import FaultyDevice, PowerCutSpec
from repro.faults.harness import (
    CrashMatrixConfig,
    run_crash_matrix,
    run_error_lane,
)
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.kernel import CpuAccount, KernelCosts, PassthruQueuePair
from repro.nvme import NvmeDevice, NvmeError, WriteCmd
from repro.sim import Environment

NAND = NandTiming(page_read=2e-6, page_program=5e-6,
                  block_erase=20e-6, channel_transfer=0.5e-6)


def make_device(env):
    geometry = FlashGeometry(channels=1, dies_per_channel=2,
                             blocks_per_die=24, pages_per_block=16)
    ftl = FtlConfig(op_ratio=0.2, gc_trigger_segments=3,
                    gc_stop_segments=4, gc_reserve_segments=2)
    return NvmeDevice(env, geometry, NAND, ftl)


def act_1_torn_writes():
    print("1. Torn writes: power dies two pages into a 4-page command\n")
    for torn in ("prefix", "shuffle"):
        env = Environment()
        device = make_device(env)
        faulty = FaultyDevice(device, power=PowerCutSpec(
            at_page_write=2, torn=torn, seed=7))
        page = device.lba_size
        payload = b"".join(bytes([i + 1]) * page for i in range(4))
        env.process(faulty.submit(WriteCmd(lba=0, nlb=4, data=payload)))
        env.run(until=faulty.cut_event)
        # offline inspection of the dead device's surviving bytes — the
        # host-side rings hang after the cut by design
        survived = [i for i in range(4)
                    if device.peek(i)  # slimlint: ignore[SLIM001]
                    == payload[i * page:(i + 1) * page]]
        print(f"   torn={torn:7s}: pages {survived} persisted, "
              f"{int(faulty.counters['torn_pages'])} torn away "
              f"(host never saw a completion)")
    print()


def act_2_retries():
    print("2. Transient NVMe errors vs the ring's retry-with-backoff\n")
    env = Environment()
    device = make_device(env)
    faulty = FaultyDevice(device)
    ring = PassthruQueuePair(env, faulty, KernelCosts())  # max_attempts=4
    account = CpuAccount(env, "faults-tour")
    page = device.lba_size

    faulty.force_errors(0, 1, count=2, opcode="write")   # transient
    faulty.force_errors(8, 9, count=99, opcode="write")  # hopeless

    def proc():
        yield from ring.submit_and_wait(
            WriteCmd(lba=0, nlb=1, data=b"A" * page), account)
        print(f"   lba 0: durable after 2 injected errors "
              f"({int(ring.counters['retries'])} retries, "
              f"t={env.now * 1e6:.0f} us of backoff+latency)")
        try:
            yield from ring.submit_and_wait(
                WriteCmd(lba=8, nlb=1, data=b"B" * page), account)
        except NvmeError as exc:
            print(f"   lba 8: gave up after "
                  f"{int(ring.counters['nvme_errors'] - 2)} failed attempts "
                  f"-> {type(exc).__name__} surfaced to the host")

    env.run(until=env.process(proc()))
    print(f"   ring counters: {int(ring.counters['nvme_errors'])} errors, "
          f"{int(ring.counters['retries'])} retries, "
          f"{int(ring.counters['retry_giveups'])} giveup(s)\n")


def act_3_crash_matrix():
    print("3. Crash matrix: kill power everywhere, recover, compare\n")
    small = dict(ops=18, keys=6, snapshot_at=6, wal_trigger_bytes=8 * 1024,
                 max_cuts=12, aftershock_ops=4)
    for torn in ("prefix", "shuffle"):
        report = run_crash_matrix(CrashMatrixConfig(torn=torn, **small))
        s = report.summary()
        verdict = "ok" if report.ok else "FAIL"
        print(f"   torn={torn:7s}: {verdict} — {int(s['cuts'])} cuts over "
              f"{int(s['total_pages'])} page writes, "
              f"{int(s['torn_tails'])} torn tails, max durability lead "
              f"{int(s['max_durability_lead'])} op(s)")
        assert report.ok, [o.issues for o in report.failures]

    lane = run_error_lane(CrashMatrixConfig(ops=24))
    print(f"   error-lane: {'ok' if lane.ok else 'FAIL'} — "
          f"{int(lane.errors_injected + lane.timeouts_injected)} faults "
          f"injected, {int(lane.retries)} ring retries, "
          f"{int(lane.giveups)} giveups, nothing acknowledged was lost")
    assert lane.ok
    print("\nNext: PYTHONPATH=src python -m repro.faults --cuts all")
    print("      docs/FAULTS.md has the six bugs this matrix flushed out")


def main():
    print("Fault-injection tour: the crash windows behind SlimIO's "
          "recovery story\n")
    act_1_torn_writes()
    act_2_retries()
    act_3_crash_matrix()


if __name__ == "__main__":
    main()
