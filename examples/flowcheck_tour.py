#!/usr/bin/env python3
"""slimflow tour: whole-program dataflow analysis, rule by rule.

slimlint (see ``analysis_tour.py``) checks one file at a time; the
bugs that actually bit this repo were interprocedural. This tour runs
**slimflow** over seeded bad/fixed module pairs for each of its three
rules, prints the diagnostics — including the read→yield→write race
trace — and finishes with the historical WalPath double-flush: the
real ``core/paths.py`` with its flush lock stripped, caught statically.

    PYTHONPATH=src python examples/flowcheck_tour.py
"""

from pathlib import Path

from repro.analysis.flow import analyze_paths, analyze_sources

REPO = Path(__file__).resolve().parents[1]


def banner(title):
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def show(result):
    for f in result.findings:
        print(f"  {f.render()}")
    if not result.findings:
        print("  (clean)")
    return result


RACY = """\
class Counter:
    def __init__(self, env):
        self.env = env
        self.value = 0
        self.lock = Resource(env, capacity=1)

    def bump(self):
        v = self.value              # read ...
        yield self.env.timeout(1)   # ... park (a rival process runs) ...
        self.value = v + 1          # ... write from the stale value

class App:
    def __init__(self, env):
        self.env = env
        self.counter = Counter(env)

    def start(self):
        self.env.process(self.writer_a())
        self.env.process(self.writer_b())

    def writer_a(self):
        yield from self.counter.bump()

    def writer_b(self):
        yield from self.counter.bump()
"""

LOCKED_BUMP = """\
    def bump(self):
        req = self.lock.request()
        yield req
        try:
            v = self.value
            yield self.env.timeout(1)
            self.value = v + 1
        finally:
            self.lock.release(req)
"""


def part1_yield_race():
    banner("Part 1: SLIM010 — yield-interleaving races")
    print("two simulator processes share Counter.bump, which parks "
          "between\nread and write:")
    result = show(analyze_sources({"src/repro/persist/app.py": RACY}))
    assert [f.code for f in result.findings] == ["SLIM010"]

    print("\nsame module with the read-yield-write under the lock:")
    fixed = RACY.replace(
        "    def bump(self):\n"
        "        v = self.value              # read ...\n"
        "        yield self.env.timeout(1)   # ... park (a rival process "
        "runs) ...\n"
        "        self.value = v + 1          # ... write from the stale "
        "value\n",
        LOCKED_BUMP,
    )
    result = show(analyze_sources({"src/repro/persist/app.py": fixed}))
    assert result.ok


TAINTED = """\
import random

class Sampler:
    def __init__(self, name):
        self.rng = random.Random(abs(hash(name)) % (2**32))
"""

SEEDED = """\
import random

class Sampler:
    def __init__(self, name, seed):
        self.rng = random.Random(seed ^ 0xBEEF)
"""


def part2_seed_provenance():
    banner("Part 2: SLIM011 — seed provenance")
    print("an RNG seeded from hash(): PYTHONHASHSEED salts it per "
          "process,\nso 'deterministic' sampling differs run to run "
          "(a real bug this\nrule found in repro.obs):")
    result = show(analyze_sources({"src/repro/obs/sampler.py": TAINTED}))
    assert [f.code for f in result.findings] == ["SLIM011"]

    print("\nseed traced to a seed-named parameter — the trust anchor:")
    result = show(analyze_sources({"src/repro/obs/sampler.py": SEEDED}))
    assert result.ok


UNFENCED = """\
class Server:
    def execute(self, op):
        yield self.cpu.request()
        seq = self.wal.stage(op)
        if self.policy == "always":
            yield from self.wal.ensure_durable(seq)
        return seq
"""


def part3_durability():
    banner("Part 3: SLIM012 — durability before the ack")
    print("the gate sits on one branch only, so it does not *dominate* "
          "the\nack — the 'everysec' path acknowledges un-durable "
          "writes:")
    result = show(analyze_sources({"src/repro/imdb/server.py": UNFENCED}))
    assert [f.code for f in result.findings] == ["SLIM012"]

    print("\nthe relaxation is a deliberate Redis-everysec contract; "
          "saying\nso at the ack site satisfies the rule:")
    tagged = UNFENCED.replace(
        "return seq",
        "return seq  # slimflow: relaxed-durability — everysec window")
    result = show(analyze_sources({"src/repro/imdb/server.py": tagged}))
    assert result.ok


def part4_walpath():
    banner("Part 4: the WalPath double-flush, caught statically")
    print("the real src/repro tree is flow-clean; stripping WalPath's "
          "flush\nlock (the PR 3 bug, originally caught at *runtime* by "
          "the\nsanitizer) re-opens the race and SLIM010 finds it from "
          "source\nalone:")
    tree = {
        str(p.relative_to(REPO)): p.read_text(encoding="utf-8")
        for p in sorted((REPO / "src" / "repro").rglob("*.py"))
    }
    target = "src/repro/core/paths.py"
    mutated = tree[target].replace("_flush_lock", "_flush_note")
    assert mutated != tree[target]
    tree[target] = mutated
    result = analyze_sources(tree)
    races = [f for f in result.findings
             if f.code == "SLIM010" and f.file == target]
    for f in races:
        print(f"  {f.render()}")
    assert races, "expected the stripped-lock WalPath race to surface"

    print("\nand the shipped tree, against the committed baseline:")
    result = analyze_paths([str(REPO / "src" / "repro")], root=REPO)
    print(f"  {len(result.findings)} findings in "
          f"{result.files_checked} files "
          f"({result.suppressed} suppressed)")
    assert result.ok


def main():
    part1_yield_race()
    part2_seed_provenance()
    part3_durability()
    part4_walpath()
    print("\ntour complete — see docs/ANALYSIS.md for the rule "
          "catalogue and the baseline workflow")


if __name__ == "__main__":
    main()
