#!/usr/bin/env python3
"""Tour of the design-space sweep + auto-tune layer (docs/SWEEP.md).

Builds a small *real* grid — RU size x GC stop watermark on the
single-node SlimIO system — runs it through the cached grid engine,
flags knife edges, renders a heatmap, then lets coordinate descent
find the best point and emit a loadable SystemConfig recommendation.

    python examples/sweep_tour.py

(Uses the in-repo "tiny" scale; a few seconds of simulated I/O.)
"""

import json
from functools import partial

from repro.bench.experiments import single_sweep_config, single_sweep_point
from repro.bench.plots import grid_heatmap
from repro.bench.report import format_top_tables
from repro.bench.scales import get_scale
from repro.bench.sweep import (
    EdgeSpec,
    GridSpec,
    detect_knife_edges,
    format_knife_edges,
    run_grid,
)
from repro.bench.tune import coordinate_descent, recommendation


def main():
    scale = get_scale("tiny")
    grid = GridSpec(
        name="tour",
        axes={
            "ru_pages": [4, 8],
            "gc_stop_segments": [5, 6],
            "wal_policy": ["periodical"],
            "value_size": [1024, 4096],
        },
        runner=partial(single_sweep_point, scale_name="tiny"),
        objective="score",
        maximize=True,
        edges=(EdgeSpec("waf_excess", factor=2.0, min_jump=0.02),
               EdgeSpec("p999_us", factor=2.0, min_jump=100.0)),
        config_builder=single_sweep_config,
    )
    print(f"sweeping {grid.size} points: "
          f"{'x'.join(str(len(v)) for v in grid.axes.values())} over "
          f"{', '.join(grid.axes)}\n")

    # 1. map the space (cache_dir=None: always simulate in the tour)
    result = run_grid(grid, scale, jobs=1)
    print(result.format())

    # 2. rank it
    print()
    print(format_top_tables(result, grid.objective, n=3))

    # 3. look for cliffs between adjacent points
    edges = detect_knife_edges(result, grid.edges, axes=dict(grid.axes))
    print("\nKnife edges:")
    print(format_knife_edges(edges))

    # 4. one heatmap slice
    print()
    print(grid_heatmap(result, "ru_pages", "value_size", "p999_us"))

    # 5. search instead of enumerate
    tr = coordinate_descent(grid, scale)
    print(f"\ntuner: {tr.evaluations} evaluations -> {tr.params} "
          f"(score {tr.metrics['score']:,.0f})")

    # 6. emit a loadable recommendation (round-trip validated)
    payload = recommendation(grid, scale, tr)
    ftl = payload["system_config"]["ftl"]
    print("recommended ftl block: "
          + json.dumps({k: ftl[k] for k in sorted(ftl)}))


if __name__ == "__main__":
    main()
