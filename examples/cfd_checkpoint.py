#!/usr/bin/env python3
"""HPC scenario from the paper's introduction: CFD transient data.

A computational-fluid-dynamics simulation advances in timesteps; every
step produces intermediate field blocks (pressure/velocity per domain
tile) that downstream ranks consume through the IMDB. The IMDB's
persistence doubles as the checkpoint mechanism: a WAL absorbs each
field update, and an On-Demand snapshot at checkpoint intervals gives a
point-in-time restart image.

This example runs the workflow on SlimIO, kills the "node" midway
through an uncheckpointed interval (power loss), and restarts from
flash — demonstrating that the recovered state is exactly the last
durable prefix: the checkpointed timestep plus every WAL-covered
update after it.

    python examples/cfd_checkpoint.py
"""

import struct

import numpy as np

from repro import LoggingPolicy, SnapshotKind, build_slimio
from repro.bench.scales import TEST_SCALE
from repro.imdb import ClientOp

TILES = 24            # domain decomposition: tiles per timestep
TIMESTEPS = 12
CHECKPOINT_EVERY = 4  # snapshot cadence
FIELD_BYTES = 2048    # one tile's packed pressure+velocity block


def field_block(step: int, tile: int) -> bytes:
    """Deterministic synthetic field data for (step, tile)."""
    rng = np.random.default_rng(step * 1000 + tile)
    samples = rng.standard_normal(FIELD_BYTES // 8 - 1)
    return struct.pack("<Q", step) + samples.tobytes()


def tile_key(tile: int) -> bytes:
    return b"field/tile/%04d" % tile


def main():
    scale = TEST_SCALE
    system = build_slimio(
        config=scale.system_config(gc_pressure=False,
                                   policy=LoggingPolicy.ALWAYS,
                                   trigger=False)
    )
    env = system.env
    crash_at_step = 10  # mid-interval: after checkpoint at step 8
    checkpoints = []

    def simulation():
        for step in range(TIMESTEPS):
            for tile in range(TILES):
                yield from system.server.execute(
                    ClientOp("SET", tile_key(tile), field_block(step, tile))
                )
            if (step + 1) % CHECKPOINT_EVERY == 0:
                proc = system.server.start_snapshot(SnapshotKind.ON_DEMAND)
                stats = yield proc
                checkpoints.append((step, stats.duration))
                print(f"  step {step:2d}: checkpoint "
                      f"({stats.written_bytes / 1024:.0f} KiB in "
                      f"{stats.duration * 1e3:.1f} ms)")
            if step + 1 == crash_at_step:
                return  # the node dies here
        raise AssertionError("unreachable in this demo")

    print(f"running {TIMESTEPS} timesteps x {TILES} tiles, "
          f"checkpoint every {CHECKPOINT_EVERY} steps, "
          f"node loss after step {crash_at_step - 1}\n")
    env.run(until=env.process(simulation(), name="cfd"))
    system.crash()  # power loss: user-space state gone, flash persists

    # --- restart: recover from the snapshot + WAL replay --------------
    result = env.run(until=env.process(
        system.recover(SnapshotKind.ON_DEMAND)))
    system.stop()

    recovered_steps = {
        struct.unpack("<Q", v[:8])[0] for v in result.data.values()
    }
    print(f"\nrecovered {len(result.data)} tiles in "
          f"{result.duration * 1e3:.1f} ms "
          f"({result.throughput / 1e6:.0f} MB/s)")
    print(f"tile timesteps present after restart: "
          f"{sorted(recovered_steps)}")

    # Always-Log means every acknowledged SET survived: all tiles must
    # be at the last written step (crash hit between steps)
    assert recovered_steps == {crash_at_step - 1}, recovered_steps
    for tile in range(TILES):
        assert result.data[tile_key(tile)] == field_block(
            crash_at_step - 1, tile)
    print("restart state verified: last acknowledged timestep intact, "
          "zero data loss (Always-Log).")


if __name__ == "__main__":
    main()
