#!/usr/bin/env python3
"""Quickstart: stand up SlimIO and the baseline, compare one workload.

Runs the paper's redis-benchmark shape (SET-heavy, closed-loop clients)
against both systems on a small simulated FDP/conventional SSD, takes
an On-Demand snapshot mid-run, prints the headline metrics, and proves
recovery round-trips the data byte-for-byte.

    python examples/quickstart.py
"""

from repro import SnapshotKind, build_baseline, build_slimio
from repro.bench.scales import TEST_SCALE
from repro.workloads import RedisBenchWorkload


def run(name, builder, scale):
    system = builder(config=scale.system_config(gc_pressure=False))
    workload = RedisBenchWorkload(
        clients=16, total_ops=6000, key_count=400, value_size=4096,
        snapshot_at_fraction=0.5,
    )
    report = workload.run(system)

    # recovery check: rebuild the dataset from flash and compare
    result = system.env.run(
        until=system.env.process(system.recover(SnapshotKind.WAL_TRIGGERED))
    )
    expected = system.server.store.as_dict()
    durable = all(expected.get(k) == v for k, v in result.data.items())
    system.stop()

    print(f"{name:18s} throughput {report.rps:>9,.0f} req/s | "
          f"SET p999 {report.set_p999 * 1e3:6.2f} ms | "
          f"snapshot {report.mean_snapshot_time * 1e3:6.1f} ms | "
          f"WAF {report.waf:.2f} | "
          f"recovered {len(result.data)} keys "
          f"({'consistent' if durable else 'CORRUPT'})")
    return report


def main():
    scale = TEST_SCALE
    print("SlimIO reproduction quickstart "
          "(simulated device, discrete-event time)\n")
    base = run("baseline (F2FS)", build_baseline, scale)
    slim = run("SlimIO (FDP)", build_slimio, scale)
    gain = 100.0 * (slim.rps / base.rps - 1.0)
    tail = base.set_p999 / slim.set_p999
    print(f"\nSlimIO delivers {gain:+.0f}% average throughput and "
          f"{tail:.1f}x the baseline's p999 headroom on this run. "
          f"Run `python -m repro.bench all` for the paper's full "
          f"tables and figures.")


if __name__ == "__main__":
    main()
