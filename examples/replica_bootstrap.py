#!/usr/bin/env python3
"""Master→replica full sync from an On-Demand snapshot (§2.1 use case).

A master serving live traffic bootstraps a fresh replica: it takes an
On-Demand snapshot, streams the image over a modeled 1 GbE link while
continuing to serve writes, then forwards the in-flight writes so the
replica converges. Run once with a SlimIO master and once with a
baseline master — the master-side snapshot-read path (passthru
read-ahead vs page cache + syscalls) shows up directly in the sync.

    python examples/replica_bootstrap.py
"""

from repro import build_baseline, build_slimio
from repro.bench.scales import TEST_SCALE
from repro.core.replicate import ReplicationLink, full_sync
from repro.imdb import ClientOp
from repro.sim import Environment
from repro.workloads import make_key, make_value

DATASET = 500
VALUE = 2048


def bootstrap(name, builder):
    env = Environment()
    cfg = TEST_SCALE.system_config(gc_pressure=False, trigger=False)
    master = builder(env=env, config=cfg)
    replica = builder(env=env, config=cfg)

    def preload():
        for i in range(DATASET):
            key = make_key(i)
            yield from master.server.execute(
                ClientOp("SET", key, make_value(key, VALUE)))

    env.run(until=env.process(preload()))

    # live writes keep flowing while the sync runs
    stop = {"done": False}

    def live_traffic():
        i = 0
        while not stop["done"]:
            key = make_key(i % DATASET)
            yield from master.server.execute(
                ClientOp("SET", key, make_value(key + b"v2", VALUE)))
            i += 1
            yield env.timeout(50e-6)

    env.process(live_traffic())

    def sync():
        rep = yield from full_sync(
            master, replica, ReplicationLink(bandwidth=125 * 1024 * 1024))
        stop["done"] = True
        return rep

    report = env.run(until=env.process(sync()))
    consistent = all(
        replica.server.store.get(k) == v
        for k, v in report_sample(master)
    )
    master.stop(); replica.stop()
    print(f"{name:18s} image {report.snapshot_bytes / 1e6:5.2f} MB | "
          f"sync {report.duration * 1e3:6.1f} ms "
          f"(wire {report.transfer_time * 1e3:5.1f} ms) | "
          f"forwarded {report.records_forwarded:3d} live writes | "
          f"replica {'consistent' if consistent else 'DIVERGED'}")
    return report


def report_sample(master):
    items = list(master.server.store.items())
    return items[:: max(1, len(items) // 50)]


def main():
    print("replica bootstrap under live writes "
          "(1 GbE link, simulated time)\n")
    bootstrap("baseline master", build_baseline)
    bootstrap("SlimIO master", build_slimio)


if __name__ == "__main__":
    main()
