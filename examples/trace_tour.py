#!/usr/bin/env python3
"""Trace tour: follow one slow SET from the server to the NAND die.

Attaches a :class:`repro.obs.RequestTracer` to a SlimIO system (WAL in
``ALWAYS`` mode, so each client waits on its own append and the causal
chain server -> store -> WAL -> io_uring -> NVMe -> NAND lands inside
the request trace), runs a redis-benchmark-shaped workload with a
mid-run snapshot, then:

* prints the tail-forensics table (top-K slowest requests, each with
  its dominant layer and — where one exists — the GC reclaim its
  critical path overlapped),
* renders the slowest request as a text waterfall with background
  GC/snapshot activity overlaid,
* walks the same trace's critical path span by span, and
* exports the whole dump as ``trace_tour.trace.jsonl`` (feed it to
  ``python -m repro.obs report``) and ``trace_tour.perfetto.json``
  (open it at https://ui.perfetto.dev).

    PYTHONPATH=src python examples/trace_tour.py [output_dir]
"""

import json
import sys
from pathlib import Path

from repro import LoggingPolicy, SystemConfig, build_slimio
from repro.obs import (
    attach_tracer,
    critical_path,
    format_tail_table,
    format_waterfall,
    overlay_spans,
    perfetto_trace,
    tail_report,
    write_trace_jsonl,
)
from repro.workloads import RedisBenchWorkload


def main() -> int:
    outdir = Path(sys.argv[1] if len(sys.argv) > 1 else "out/trace_tour")
    outdir.mkdir(parents=True, exist_ok=True)

    system = build_slimio(config=SystemConfig(policy=LoggingPolicy.ALWAYS))
    system.attach_obs()
    tracer = attach_tracer(system, sample_every=8, keep_slowest=12)

    workload = RedisBenchWorkload(
        clients=16, total_ops=6000, key_count=400, value_size=4096,
        snapshot_at_fraction=0.5,
    )
    workload.run(system)
    system.stop()
    tracer.drain_open()

    overlays = overlay_spans(system.obs)
    gc_spans = [o for o in overlays if o.name == "gc_reclaim"]
    report = tail_report(
        tracer.kept.values(), tracer.background, gc_spans,
        top_k=10, requests_seen=tracer.requests_seen,
    )

    print(f"traced {tracer.requests_seen} requests, kept "
          f"{len(tracer.kept)} (1-in-8 head sample + 12 slowest)\n")
    print("tail forensics — the 10 slowest requests:\n")
    print(format_tail_table(report))

    slowest = report.rows[0].ctx
    print(f"\nwaterfall of the slowest request "
          f"(trace {slowest.trace_id}, {slowest.name}):\n")
    print(format_waterfall(slowest, overlays))

    print("\ncritical path (who was actually on the clock):")
    for span, a, b in critical_path(slowest.spans):
        print(f"  {(b - a) * 1e6:9.1f}us  {span.layer:<9s} {span.name}")

    jsonl = outdir / "trace_tour.trace.jsonl"
    write_trace_jsonl(jsonl, tracer, overlays, run="trace-tour")
    perfetto = outdir / "trace_tour.perfetto.json"
    perfetto.write_text(json.dumps(perfetto_trace(
        tracer, overlays, run="trace-tour")))
    print(f"\nwrote {jsonl} (try: python -m repro.obs report {jsonl})")
    print(f"wrote {perfetto} (open in https://ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
